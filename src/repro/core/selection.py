"""Gate-level selection cells implementing ``⋄̂_M`` and ``out_M`` (Fig. 3).

Both operators are realised by the same depth-3 selection-circuit shape
(paper Fig. 3 with the input wirings of Table 6): per output bit, two
AND gates feeding an OR, with one OR on a select path and one inverter
-- in total **4 AND + 4 OR + 2 INV = 10 gates** per operator cell, as
the paper reports.  Working in the hatted domain (first state bit
inverted, ``N(x) = x̄_1 x_2``) is what makes this inverter budget
suffice.

Concretely, with hatted state ``x̂ = (x̂_1, x̂_2) = (s̄_1, s_2)``:

* ``(x ⋄̂ y)_k   = x̂_1·(x̂_2 + ŷ_k) + x̂_2·¬ŷ_k``          (k = 1, 2)
* ``out(s, b)_1 = (s̄_1 + b_1)·b_2 + ¬s_2·b_1``
* ``out(s, b)_2 = ¬s̄_1·b_2 + (s_2 + b_2)·b_1``

The footnote-2 caveat of the paper applies: these *particular* formulas
compute the metastable closure gate-by-gate (Table 3 semantics); other
Boolean-equivalent formulas do not.  The test suite checks the closure
property exhaustively over all ``3^4`` operand combinations.

For the first output position the state is the constant
``Ns^{(0)} = (1, 0)`` and ``out_M`` collapses to one OR (max bit) and
one AND (min bit) -- the "reduced cell" of Fig. 5.
"""

from __future__ import annotations

from typing import Tuple

from ..circuits.builder import and2, inv, or2
from ..circuits.netlist import Circuit, NetId

#: A hatted 2-bit FSM state or input pair travelling through the PPC.
StateNets = Tuple[NetId, NetId]


def build_diamond_hat_cell(
    circuit: Circuit, x: StateNets, y: StateNets
) -> StateNets:
    """Emit the 10-gate ``⋄̂_M`` cell; returns the hatted result state.

    Both operands are in the hatted domain; inside the PPC this holds
    automatically because inputs are pre-hatted (``δ_i = N(g_i h_i)``,
    i.e. ``(ḡ_i, h_i)``) and every cell re-emits hatted outputs.
    """
    x1, x2 = x
    y1, y2 = y
    out1 = or2(
        circuit,
        and2(circuit, x1, or2(circuit, x2, y1)),
        and2(circuit, x2, inv(circuit, y1)),
    )
    out2 = or2(
        circuit,
        and2(circuit, x1, or2(circuit, x2, y2)),
        and2(circuit, x2, inv(circuit, y2)),
    )
    return (out1, out2)


def build_out_cell(
    circuit: Circuit, s_hat: StateNets, b1: NetId, b2: NetId
) -> Tuple[NetId, NetId]:
    """Emit the 10-gate ``out_M`` cell.

    ``s_hat`` is the *hatted* prefix state ``Ns^{(i-1)}_M`` coming from
    the PPC; ``b1, b2`` are the raw input bits ``g_i, h_i``.  Returns
    ``(max_i, min_i)``.
    """
    x1, x2 = s_hat  # x1 = s̄1, x2 = s2
    max_i = or2(
        circuit,
        and2(circuit, or2(circuit, x1, b1), b2),
        and2(circuit, inv(circuit, x2), b1),
    )
    min_i = or2(
        circuit,
        and2(circuit, inv(circuit, x1), b2),
        and2(circuit, or2(circuit, x2, b2), b1),
    )
    return (max_i, min_i)


def build_out_cell_initial(
    circuit: Circuit, b1: NetId, b2: NetId
) -> Tuple[NetId, NetId]:
    """The reduced first-position cell: state ``Ns^{(0)} = (1, 0)``.

    Substituting the constants into the out formulas leaves
    ``max_1 = g_1 OR h_1`` and ``min_1 = g_1 AND h_1`` -- 2 gates.
    """
    return (or2(circuit, b1, b2), and2(circuit, b1, b2))


# ----------------------------------------------------------------------
# Standalone single-cell circuits (unit-test and ablation targets)
# ----------------------------------------------------------------------
def diamond_hat_circuit() -> Circuit:
    """A circuit computing one ``⋄̂_M`` op: inputs x1 x2 y1 y2 → 2 outputs."""
    c = Circuit("diamond_hat_cell")
    x = (c.add_input(base="x"), c.add_input(base="x"))
    y = (c.add_input(base="y"), c.add_input(base="y"))
    c.add_outputs(build_diamond_hat_cell(c, x, y))
    return c


def out_circuit() -> Circuit:
    """A circuit computing one ``out_M`` op: inputs s̄1 s2 b1 b2 → 2 outputs."""
    c = Circuit("out_cell")
    s = (c.add_input(base="s"), c.add_input(base="s"))
    b1 = c.add_input(base="b")
    b2 = c.add_input(base="b")
    c.add_outputs(build_out_cell(c, s, b1, b2))
    return c
