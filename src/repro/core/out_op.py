"""The ``out`` operator: producing sorted bits from FSM states.

``out(s^{(i-1)}, g_i h_i)`` returns ``max_rg{g,h}_i min_rg{g,h}_i``
(Table 4, tabulated as the right half of Table 5).  Theorem 4.3 shows
that for valid inputs, applying the *closure* ``out_M`` to the closure
state ``s^{(i-1)}_M`` yields exactly the bits of ``max_rg_M`` /
``min_rg_M`` -- i.e., the decomposition into prefix computation plus
per-bit output cells survives metastability.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ternary.resolution import metastable_closure
from ..ternary.word import Word

#: Table 5 (right): ``out(s, b)``; s indexes rows, b columns.
OUT_TABLE: Dict[Tuple[str, str], str] = {
    ("00", "00"): "00", ("00", "01"): "10", ("00", "11"): "11", ("00", "10"): "10",
    ("01", "00"): "00", ("01", "01"): "10", ("01", "11"): "11", ("01", "10"): "01",
    ("11", "00"): "00", ("11", "01"): "01", ("11", "11"): "11", ("11", "10"): "01",
    ("10", "00"): "00", ("10", "01"): "01", ("10", "11"): "11", ("10", "10"): "10",
}


def out(s: Word, b: Word) -> Word:
    """``out(s, b)`` on stable 2-bit words (Tables 4/5)."""
    if len(s) != 2 or len(b) != 2:
        raise ValueError("out expects 2-bit operands")
    return Word(OUT_TABLE[(str(s), str(b))])


#: ``out_M``: metastable closure of ``out``.
out_m = metastable_closure(out)
out_m.__name__ = "out_m"
