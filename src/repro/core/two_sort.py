"""The complete ``2-sort(B)`` circuit (paper Fig. 5, Theorem 5.1).

Structure, MSB-first over ``B``-bit valid strings ``g`` and ``h``:

1. **Input hatting** -- ``B-1`` inverters produce
   ``δ_j = N(g_{j+1} h_{j+1}) = (ḡ_{j+1}, h_{j+1})`` for
   ``j ∈ [B-1]`` (bit 1's state contribution is consumed by the reduced
   output cell instead of the PPC).
2. **Prefix network** -- ``PPC_{⋄̂_M}(B-1)`` over the δ items computes
   all hatted prefix states ``Ns^{(i)}_M`` concurrently
   (:mod:`repro.ppc`).
3. **Output stage** -- position 1 uses the reduced AND+OR cell
   (state is the constant ``Ns^{(0)} = (1,0)``); positions ``2..B`` use
   full 10-gate ``out_M`` cells fed by ``Ns^{(i-1)}_M`` and the raw bits
   ``g_i, h_i``.

Gate count: ``10·C(B-1) + (B-1) + 2 + 10·(B-1)`` with ``C`` the
Ladner-Fischer op count -- 13 / 55 / 169 / 407 for B = 2 / 4 / 8 / 16,
matching Table 7 exactly.  Depth is ``O(log B)``, size ``O(B)``
(Theorem 5.1), both asserted in the tests.
"""

from __future__ import annotations

from typing import List, Tuple

from ..circuits.builder import inv
from ..circuits.netlist import Circuit, NetId
from ..ppc.prefix import lf_op_count
from ..ppc.schedules import get_schedule
from .selection import (
    StateNets,
    build_diamond_hat_cell,
    build_out_cell,
    build_out_cell_initial,
)


def build_two_sort(width: int, schedule: str = "ladner_fischer") -> Circuit:
    """Construct the MC ``2-sort(width)`` netlist.

    Primary inputs: ``g_1..g_B`` then ``h_1..h_B``; primary outputs:
    ``max_1..max_B`` then ``min_1..min_B`` (the paper's ``g'``/``h'``).
    ``schedule`` selects the prefix network (paper: ``ladner_fischer``;
    ``serial``/``sklansky`` exist for ablations and produce functionally
    identical circuits).
    """
    if width < 1:
        raise ValueError("2-sort width must be >= 1")
    circuit = Circuit(f"two_sort_{width}b_{schedule}")
    g = [circuit.add_input(f"g{i}") for i in range(1, width + 1)]
    h = [circuit.add_input(f"h{i}") for i in range(1, width + 1)]

    max_bits: List[NetId] = [None] * width  # type: ignore[list-item]
    min_bits: List[NetId] = [None] * width  # type: ignore[list-item]

    # Position 1: reduced cell (state constant Ns^(0) = (1, 0)).
    max_bits[0], min_bits[0] = build_out_cell_initial(circuit, g[0], h[0])

    if width > 1:
        # Hatted PPC inputs δ_j = (ḡ_{j+1}, h_{j+1}) for j in [B-1].
        deltas: List[StateNets] = [
            (inv(circuit, g[j]), h[j]) for j in range(width - 1)
        ]
        prefix_builder = get_schedule(schedule)
        prefixes = prefix_builder(circuit, deltas, build_diamond_hat_cell)
        # Position i (2-based): state Ns^{(i-1)} = prefixes[i-2].
        for i in range(2, width + 1):
            s_hat = prefixes[i - 2]
            max_bits[i - 1], min_bits[i - 1] = build_out_cell(
                circuit, s_hat, g[i - 1], h[i - 1]
            )

    circuit.add_outputs(max_bits)
    circuit.add_outputs(min_bits)
    return circuit


def predicted_gate_count(width: int) -> int:
    """Closed-form gate count of :func:`build_two_sort` (LF schedule).

    ``10·C(B-1)`` for the prefix ops, ``B-1`` hatting inverters, ``2``
    for the reduced first cell, ``10·(B-1)`` for the remaining output
    cells.  Reproduces the "# Gates" column of Table 7.
    """
    if width < 1:
        raise ValueError("2-sort width must be >= 1")
    if width == 1:
        return 2
    n = width - 1
    return 10 * lf_op_count(n) + n + 2 + 10 * n


def split_outputs(bits, width: int) -> Tuple[List, List]:
    """Split a flat 2-sort output vector into (max word, min word)."""
    seq = list(bits)
    if len(seq) != 2 * width:
        raise ValueError(f"expected {2 * width} output bits, got {len(seq)}")
    return seq[:width], seq[width:]
