"""The paper's contribution: optimal MC 2-sort circuits.

Exports the comparison FSM (Fig. 2), the ``⋄`` / ``out`` operators and
closures (Tables 4/5), the 10-gate selection cells (Fig. 3 / Table 6),
the complete ``2-sort(B)`` builder (Fig. 5 / Theorem 5.1), and the
value-level FSM decomposition used to cross-validate everything.
"""

from .fsm import (
    ALL_STATES,
    EQ_EVEN,
    EQ_ODD,
    GREATER,
    INITIAL,
    LESS,
    classify,
    fsm_step,
    output_bits,
    run_fsm,
    two_sort_via_fsm_stable,
)
from .diamond import (
    DIAMOND_TABLE,
    add_mod4,
    add_mod4_m,
    diamond,
    diamond_hat,
    diamond_hat_m,
    diamond_m,
    n_transform,
)
from .out_op import OUT_TABLE, out, out_m
from .selection import (
    StateNets,
    build_diamond_hat_cell,
    build_out_cell,
    build_out_cell_initial,
    diamond_hat_circuit,
    out_circuit,
)
from .two_sort import build_two_sort, predicted_gate_count, split_outputs
from .functional import prefix_states, two_sort_via_fsm

__all__ = [
    "ALL_STATES",
    "EQ_EVEN",
    "EQ_ODD",
    "GREATER",
    "INITIAL",
    "LESS",
    "classify",
    "fsm_step",
    "output_bits",
    "run_fsm",
    "two_sort_via_fsm_stable",
    "DIAMOND_TABLE",
    "add_mod4",
    "add_mod4_m",
    "diamond",
    "diamond_hat",
    "diamond_hat_m",
    "diamond_m",
    "n_transform",
    "OUT_TABLE",
    "out",
    "out_m",
    "StateNets",
    "build_diamond_hat_cell",
    "build_out_cell",
    "build_out_cell_initial",
    "diamond_hat_circuit",
    "out_circuit",
    "build_two_sort",
    "predicted_gate_count",
    "split_outputs",
    "prefix_states",
    "two_sort_via_fsm",
]
