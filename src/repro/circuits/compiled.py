"""Bit-parallel batch simulation: two-plane compiled netlist programs.

The scalar simulator in :mod:`repro.circuits.evaluate` visits every gate
once *per input vector*, paying Python's interpretation overhead per
trit.  This module applies classic **bit-slicing** from logic simulation
to the three-valued domain: a batch of ``n`` ternary values occupying
one net is packed into **two bit-planes** -- arbitrary-precision Python
integers whose bit ``j`` describes vector ``j``:

* plane ``p0``: bit set iff the net *can resolve to 0* in vector ``j``,
* plane ``p1``: bit set iff the net *can resolve to 1* in vector ``j``.

So ``0 = (1, 0)``, ``1 = (0, 1)``, and ``M = (1, 1)`` -- the encoding of
a trit is exactly its resolution set (Definition 2.5).  Under this
encoding the strong-Kleene connectives of the paper's gate model
(Table 3) become plain bitwise operations evaluated for *all* vectors
at once, at C speed:

* ``AND``:  ``c1 = a1 & b1``,  ``c0 = a0 | b0``
  (the output can be 1 only if both inputs can; it can be 0 if either
  input can),
* ``OR`` is the plane-dual:  ``c0 = a0 & b0``,  ``c1 = a1 | b1``,
* ``INV`` swaps the planes,
* ``XOR``: ``c1 = (a0 & b1) | (a1 & b0)``, ``c0 = (a0 & b0) | (a1 & b1)``
  (a resolution-level case split; matches the closure of XOR for
  independent inputs, hence the Kleene table),
* composite cells (NAND/NOR/XNOR/AOI21/OAI21/MUX2) are lowered to
  sequences of the primitives above, mirroring exactly how their scalar
  evaluation functions are defined in :mod:`repro.ternary.kleene` -- so
  batch and scalar semantics agree *by construction* (and the test
  suite re-checks every gate kind over its full ternary truth table).

:class:`CompiledCircuit` lowers a :class:`~repro.circuits.netlist.Circuit`
once into a flat program over integer net slots; :func:`compile_circuit`
caches the program per netlist identity (keyed on the circuit's mutation
``version``).  :class:`TritVec` is the user-facing batch value type.

Throughput: one gate visit now processes thousands of vectors, which is
what makes exhaustive verification over all ``|S^B_rg|^2`` valid pairs
(261k pairs at B = 8) and large measurement-sorting workloads run in
milliseconds instead of minutes (see ``benchmarks/bench_engines.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..ternary.trit import Trit, TritLike
from ..ternary.word import Word
from .netlist import Circuit, CircuitError, Gate
from .wire import NetId

__all__ = ["TritVec", "CompiledCircuit", "compile_circuit"]


# ----------------------------------------------------------------------
# TritVec: a batch of trits in two-plane encoding
# ----------------------------------------------------------------------
class TritVec:
    """An immutable batch of ``n`` trits in two-plane encoding.

    Lane ``j`` holds one ternary value; ``p0``/``p1`` are the
    can-be-0 / can-be-1 planes over all lanes.  Kleene connectives are
    provided as operators so a :class:`TritVec` behaves like ``n``
    trits evaluated simultaneously::

        >>> a = TritVec.from_trits("01M")
        >>> b = TritVec.broadcast("M", 3)
        >>> (a & b).to_str()
        '0MM'
    """

    __slots__ = ("n", "p0", "p1")

    def __init__(self, n: int, p0: int, p1: int):
        if n < 0:
            raise ValueError("TritVec length must be >= 0")
        mask = (1 << n) - 1
        if not (0 <= p0 <= mask and 0 <= p1 <= mask):
            raise ValueError(f"planes out of range for {n} lanes")
        if p0 | p1 != mask:
            raise ValueError(
                "every lane must encode a trit: plane union must be all-ones"
            )
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "p0", p0)
        object.__setattr__(self, "p1", p1)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("TritVec is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_trits(cls, values: Union[str, Iterable[TritLike]]) -> "TritVec":
        """Pack a sequence of trit-likes; lane ``j`` is ``values[j]``."""
        if isinstance(values, str):
            trits = [Trit.from_char(c) for c in values]
        else:
            trits = [
                v if isinstance(v, Trit) else Trit.coerce(v) for v in values
            ]
        n = len(trits)
        b0 = bytearray((n + 7) >> 3)
        b1 = bytearray((n + 7) >> 3)
        for j, t in enumerate(trits):
            bit = 1 << (j & 7)
            if t is not Trit.ONE:
                b0[j >> 3] |= bit
            if t is not Trit.ZERO:
                b1[j >> 3] |= bit
        return cls(n, int.from_bytes(b0, "little"), int.from_bytes(b1, "little"))

    @classmethod
    def broadcast(cls, value: TritLike, n: int) -> "TritVec":
        """All ``n`` lanes hold the same trit."""
        t = Trit.coerce(value)
        mask = (1 << n) - 1
        p0 = mask if t is not Trit.ONE else 0
        p1 = mask if t is not Trit.ZERO else 0
        return cls(n, p0, p1)

    # ------------------------------------------------------------------
    # Sequence-ish access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n

    def __getitem__(self, j: int) -> Trit:
        if j < 0:
            j += self.n
        if not 0 <= j < self.n:
            raise IndexError(f"lane {j} out of range for {self.n} lanes")
        z = (self.p0 >> j) & 1
        o = (self.p1 >> j) & 1
        if z and o:
            return Trit.META
        return Trit.ZERO if z else Trit.ONE

    def to_trits(self) -> List[Trit]:
        """All lanes as a list (bulk path; O(1) per lane via bytes)."""
        n = self.n
        nbytes = (n + 7) >> 3
        b0 = self.p0.to_bytes(nbytes, "little")
        b1 = self.p1.to_bytes(nbytes, "little")
        out: List[Trit] = []
        for j in range(n):
            bit = 1 << (j & 7)
            z = b0[j >> 3] & bit
            o = b1[j >> 3] & bit
            out.append(Trit.META if (z and o) else (Trit.ZERO if z else Trit.ONE))
        return out

    def to_word(self) -> Word:
        return Word(self.to_trits())

    def to_str(self) -> str:
        return "".join(t.to_char() for t in self.to_trits())

    @property
    def metastable_lanes(self) -> int:
        """Number of lanes holding ``M`` (popcount of the plane overlap)."""
        return bin(self.p0 & self.p1).count("1")

    # ------------------------------------------------------------------
    # Kleene connectives (Table 3, batched)
    # ------------------------------------------------------------------
    def _check(self, other: "TritVec") -> None:
        if self.n != other.n:
            raise ValueError(f"lane-count mismatch: {self.n} vs {other.n}")

    def __and__(self, other: "TritVec") -> "TritVec":
        self._check(other)
        return TritVec(self.n, self.p0 | other.p0, self.p1 & other.p1)

    def __or__(self, other: "TritVec") -> "TritVec":
        self._check(other)
        return TritVec(self.n, self.p0 & other.p0, self.p1 | other.p1)

    def __invert__(self) -> "TritVec":
        return TritVec(self.n, self.p1, self.p0)

    def xor(self, other: "TritVec") -> "TritVec":
        self._check(other)
        a0, a1, b0, b1 = self.p0, self.p1, other.p0, other.p1
        return TritVec(self.n, (a0 & b0) | (a1 & b1), (a0 & b1) | (a1 & b0))

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, TritVec):
            return (self.n, self.p0, self.p1) == (other.n, other.p0, other.p1)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.n, self.p0, self.p1))

    def __repr__(self) -> str:
        if self.n <= 64:
            return f"TritVec('{self.to_str()}')"
        return f"TritVec(n={self.n})"


# ----------------------------------------------------------------------
# The compiled program
# ----------------------------------------------------------------------
# Primitive opcodes over (p0, p1) slot pairs.
_OP_AND = 0
_OP_OR = 1
_OP_INV = 2
_OP_XOR = 3
_OP_BUF = 4

#: Single-lane plane encodings, for scalar wrappers.
_TRIT_PLANES = {
    Trit.ZERO: (1, 0),
    Trit.ONE: (0, 1),
    Trit.META: (1, 1),
}


def trit_from_planes(can0: int, can1: int) -> Trit:
    """The trit whose resolution set is described by the plane flags.

    Arguments are truthy/falsy (a masked bit or an any-lane reduction
    works directly).  The single place the inverse encoding lives.
    """
    if can0:
        return Trit.META if can1 else Trit.ZERO
    return Trit.ONE


class CompiledCircuit:
    """A :class:`Circuit` lowered to a flat two-plane bitwise program.

    Compilation walks the topological gate order once and emits a list
    of primitive ops over integer *slots* (one slot per net, plus
    temporaries for composite cells).  :meth:`evaluate_batch` then runs
    the whole program over a batch of input vectors, each bitwise op
    processing every vector simultaneously.

    Instances are immutable snapshots: they record the circuit's
    mutation ``version`` at compile time, and :func:`compile_circuit`
    recompiles automatically when the netlist changes.
    """

    def __init__(self, circuit: Circuit):
        self.name = circuit.name
        self.version = circuit.version
        order = circuit.topological_gates()  # validates structure

        slot_of: Dict[NetId, int] = {}
        for net in circuit.inputs:
            slot_of[net] = len(slot_of)
        self.n_inputs = len(slot_of)
        self.input_slots: Tuple[int, ...] = tuple(range(self.n_inputs))

        const_slots: List[Tuple[int, Trit]] = []
        for net, value in circuit.const_nets.items():
            slot_of[net] = len(slot_of)
            const_slots.append((slot_of[net], value))

        n_slots = len(slot_of)
        ops: List[Tuple[int, int, int, int]] = []

        def temp() -> int:
            nonlocal n_slots
            n_slots += 1
            return n_slots - 1

        def emit(op: int, dst: int, a: int, b: int = 0) -> int:
            ops.append((op, dst, a, b))
            return dst

        for gate in order:
            kind = gate.kind.name
            src = [slot_of[n] for n in gate.inputs]
            dst = n_slots
            n_slots += 1
            slot_of[gate.output] = dst
            if kind == "AND2":
                emit(_OP_AND, dst, src[0], src[1])
            elif kind == "OR2":
                emit(_OP_OR, dst, src[0], src[1])
            elif kind == "INV":
                emit(_OP_INV, dst, src[0])
            elif kind == "BUF":
                emit(_OP_BUF, dst, src[0])
            elif kind == "XOR2":
                emit(_OP_XOR, dst, src[0], src[1])
            elif kind == "NAND2":
                t = emit(_OP_AND, temp(), src[0], src[1])
                emit(_OP_INV, dst, t)
            elif kind == "NOR2":
                t = emit(_OP_OR, temp(), src[0], src[1])
                emit(_OP_INV, dst, t)
            elif kind == "XNOR2":
                t = emit(_OP_XOR, temp(), src[0], src[1])
                emit(_OP_INV, dst, t)
            elif kind == "AOI21":
                t1 = emit(_OP_AND, temp(), src[0], src[1])
                t2 = emit(_OP_OR, temp(), t1, src[2])
                emit(_OP_INV, dst, t2)
            elif kind == "OAI21":
                t1 = emit(_OP_OR, temp(), src[0], src[1])
                t2 = emit(_OP_AND, temp(), t1, src[2])
                emit(_OP_INV, dst, t2)
            elif kind == "MUX2":
                # (sel, a, b) -> (~sel & a) | (sel & b), as in kleene_mux.
                ns = emit(_OP_INV, temp(), src[0])
                t1 = emit(_OP_AND, temp(), ns, src[1])
                t2 = emit(_OP_AND, temp(), src[0], src[2])
                emit(_OP_OR, dst, t1, t2)
            elif kind in ("CONST0", "CONST1"):
                const_slots.append(
                    (dst, Trit.ONE if kind == "CONST1" else Trit.ZERO)
                )
            else:
                raise CircuitError(
                    f"{circuit.name}: cannot compile gate kind {kind!r}"
                )
        self.const_slots: Tuple[Tuple[int, Trit], ...] = tuple(const_slots)

        self.ops: Tuple[Tuple[int, int, int, int], ...] = tuple(ops)
        self.n_slots = n_slots
        self.output_slots: Tuple[int, ...] = tuple(
            slot_of[n] for n in circuit.outputs
        )
        self.n_outputs = len(self.output_slots)
        #: slot of every *named* net (inputs, constants, gate outputs) --
        #: temporaries introduced by composite-cell lowering are excluded.
        self.net_slot: Dict[NetId, int] = dict(slot_of)
        self.gate_count = sum(1 for g in order if g.kind.arity > 0)

    # ------------------------------------------------------------------
    # Core executor
    # ------------------------------------------------------------------
    def run_planes(
        self, input_planes: Sequence[Tuple[int, int]], n_vectors: int
    ) -> Tuple[List[int], List[int]]:
        """Execute the program on raw planes; returns all slot planes.

        ``input_planes[i]`` is the ``(p0, p1)`` pair for primary input
        ``i`` over ``n_vectors`` lanes.  Callers project the returned
        per-slot plane lists through :attr:`output_slots` or
        :attr:`net_slot`.
        """
        if len(input_planes) != self.n_inputs:
            raise ValueError(
                f"{self.name}: expected planes for {self.n_inputs} inputs, "
                f"got {len(input_planes)}"
            )
        mask = (1 << n_vectors) - 1
        p0 = [0] * self.n_slots
        p1 = [0] * self.n_slots
        for slot, (a0, a1) in zip(self.input_slots, input_planes):
            p0[slot] = a0
            p1[slot] = a1
        for slot, value in self.const_slots:
            if value is Trit.ONE:
                p1[slot] = mask
            else:
                p0[slot] = mask
        for op, d, a, b in self.ops:
            if op == _OP_AND:
                p1[d] = p1[a] & p1[b]
                p0[d] = p0[a] | p0[b]
            elif op == _OP_OR:
                p0[d] = p0[a] & p0[b]
                p1[d] = p1[a] | p1[b]
            elif op == _OP_INV:
                p0[d] = p1[a]
                p1[d] = p0[a]
            elif op == _OP_XOR:
                a0, a1, b0, b1 = p0[a], p1[a], p0[b], p1[b]
                p1[d] = (a0 & b1) | (a1 & b0)
                p0[d] = (a0 & b0) | (a1 & b1)
            else:  # _OP_BUF
                p0[d] = p0[a]
                p1[d] = p1[a]
        return p0, p1

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def encode_inputs(
        self, input_vectors: Sequence[Sequence[TritLike]]
    ) -> Tuple[List[Tuple[int, int]], int]:
        """Pack input vectors into per-input planes.

        Each vector supplies all primary inputs for one lane, in the
        circuit's input order (a :class:`Word` works directly).
        """
        n = len(input_vectors)
        ni = self.n_inputs
        nbytes = (n + 7) >> 3
        b0 = [bytearray(nbytes) for _ in range(ni)]
        b1 = [bytearray(nbytes) for _ in range(ni)]
        for j, vec in enumerate(input_vectors):
            if len(vec) != ni:
                raise ValueError(
                    f"{self.name}: expected {ni} input bits, got {len(vec)}"
                )
            byte = j >> 3
            bit = 1 << (j & 7)
            for i, t in enumerate(vec):
                if not isinstance(t, Trit):
                    t = Trit.coerce(t)
                if t is not Trit.ONE:
                    b0[i][byte] |= bit
                if t is not Trit.ZERO:
                    b1[i][byte] |= bit
        planes = [
            (int.from_bytes(b0[i], "little"), int.from_bytes(b1[i], "little"))
            for i in range(ni)
        ]
        return planes, n

    def decode_outputs(
        self, p0: Sequence[int], p1: Sequence[int], n_vectors: int
    ) -> List[Word]:
        """Unpack output planes into one :class:`Word` per lane."""
        nbytes = (n_vectors + 7) >> 3
        outs = [
            (p0[s].to_bytes(nbytes, "little"), p1[s].to_bytes(nbytes, "little"))
            for s in self.output_slots
        ]
        meta, zero, one = Trit.META, Trit.ZERO, Trit.ONE
        words: List[Word] = []
        for j in range(n_vectors):
            byte = j >> 3
            bit = 1 << (j & 7)
            row = []
            for zb, ob in outs:
                if zb[byte] & bit:
                    row.append(meta if ob[byte] & bit else zero)
                else:
                    row.append(one)
            words.append(Word(row))
        return words

    def decode_lane(
        self, p0: Sequence[int], p1: Sequence[int], lane: int
    ) -> Word:
        """Output word of a single lane (per-lane slow path)."""
        return Word(
            trit_from_planes((p0[s] >> lane) & 1, (p1[s] >> lane) & 1)
            for s in self.output_slots
        )

    # ------------------------------------------------------------------
    # Public batch APIs
    # ------------------------------------------------------------------
    def evaluate_batch(
        self, input_vectors: Sequence[Sequence[TritLike]]
    ) -> List[Word]:
        """Simulate all vectors at once; one output :class:`Word` each.

        ``input_vectors[j]`` covers the primary inputs (in order) for
        lane ``j``; the result's ``j``-th element is the full output
        vector of that lane.  Semantics are identical to calling the
        scalar :func:`repro.circuits.evaluate.evaluate_words` per
        vector, at a fraction of the cost.
        """
        planes, n = self.encode_inputs(input_vectors)
        p0, p1 = self.run_planes(planes, n)
        return self.decode_outputs(p0, p1, n)

    def run_tritvecs(self, inputs: Sequence[TritVec]) -> List[TritVec]:
        """Batch-evaluate with :class:`TritVec` per input net.

        ``inputs[i]`` carries input ``i`` across all lanes; returns one
        :class:`TritVec` per primary output.  This is the zero-copy path
        used by the batched sorting-network simulator.
        """
        if not inputs and self.n_inputs:
            raise ValueError(f"{self.name}: expected {self.n_inputs} inputs")
        n = inputs[0].n if inputs else 0
        for tv in inputs:
            if tv.n != n:
                raise ValueError("all input TritVecs must have equal lanes")
        planes = [(tv.p0, tv.p1) for tv in inputs]
        p0, p1 = self.run_planes(planes, n)
        return [TritVec(n, p0[s], p1[s]) for s in self.output_slots]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledCircuit({self.name!r}, inputs={self.n_inputs}, "
            f"outputs={self.n_outputs}, ops={len(self.ops)})"
        )


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """Compile ``circuit``, caching the program on the netlist itself.

    The cache is keyed on the circuit's mutation ``version``: adding a
    gate, input, output, or constant invalidates it and the next call
    recompiles.  Identity-keyed caching means independent circuits never
    share programs even when structurally equal.
    """
    cached: Optional[CompiledCircuit] = getattr(circuit, "_compiled_cache", None)
    if cached is not None and cached.version == circuit.version:
        return cached
    program = CompiledCircuit(circuit)
    circuit._compiled_cache = program
    return program
