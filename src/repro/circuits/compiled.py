"""Bit-parallel batch simulation: two-plane compiled netlist programs.

The scalar simulator in :mod:`repro.circuits.evaluate` visits every gate
once *per input vector*, paying Python's interpretation overhead per
trit.  This module applies classic **bit-slicing** from logic simulation
to the three-valued domain: a batch of ``n`` ternary values occupying
one net is packed into **two bit-planes** whose bit (lane) ``j``
describes vector ``j``:

* plane ``p0``: bit set iff the net *can resolve to 0* in vector ``j``,
* plane ``p1``: bit set iff the net *can resolve to 1* in vector ``j``.

So ``0 = (1, 0)``, ``1 = (0, 1)``, and ``M = (1, 1)`` -- the encoding of
a trit is exactly its resolution set (Definition 2.5).  Under this
encoding the strong-Kleene connectives of the paper's gate model
(Table 3) become plain bitwise operations evaluated for *all* vectors
at once, at C speed:

* ``AND``:  ``c1 = a1 & b1``,  ``c0 = a0 | b0``
  (the output can be 1 only if both inputs can; it can be 0 if either
  input can),
* ``OR`` is the plane-dual:  ``c0 = a0 & b0``,  ``c1 = a1 | b1``,
* ``INV`` swaps the planes,
* ``XOR``: ``c1 = (a0 & b1) | (a1 & b0)``, ``c0 = (a0 & b0) | (a1 & b1)``
  (a resolution-level case split; matches the closure of XOR for
  independent inputs, hence the Kleene table),
* composite cells (NAND/NOR/XNOR/AOI21/OAI21/MUX2) are lowered to
  sequences of the primitives above, mirroring exactly how their scalar
  evaluation functions are defined in :mod:`repro.ternary.kleene` -- so
  batch and scalar semantics agree *by construction* (and the test
  suite re-checks every gate kind over its full ternary truth table).

**Plane storage is pluggable.**  How a plane is represented -- one
arbitrary-precision int, a numpy ``uint64`` array, a stdlib word array
-- is owned by a :class:`~repro.backends.PlaneBackend`
(:mod:`repro.backends`); :class:`TritVec` and :class:`CompiledCircuit`
are parameterized by one.  The default (``"bigint"``) reproduces the
original behavior exactly; the ``"array"`` backend trades big-int carry
chains for fixed-width vectorized word ops.  The backend also owns the
compiled-op sweep (``run_ops``), so each representation keeps a
specialized hot loop.

:class:`CompiledCircuit` lowers a :class:`~repro.circuits.netlist.Circuit`
once into a flat program over integer net slots; :func:`compile_circuit`
caches the program per netlist identity, keyed on the circuit's mutation
``version`` *and* the backend name.  :class:`TritVec` is the
user-facing batch value type.

Throughput: one gate visit now processes thousands of vectors, which is
what makes exhaustive verification over all ``|S^B_rg|^2`` valid pairs
(261k pairs at B = 8) and large measurement-sorting workloads run in
milliseconds instead of minutes (see ``benchmarks/bench_engines.py``).
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..backends import Plane, PlaneBackend, get_backend
from ..ternary.trit import Trit, TritLike
from ..ternary.word import Word
from .netlist import Circuit, CircuitError, Gate
from .wire import NetId

__all__ = ["TritVec", "CompiledCircuit", "compile_circuit"]

#: Backend selector accepted by every public entry point: a registry
#: name, a resolved instance, or None for the process default.
BackendLike = Union[str, PlaneBackend, None]


# ----------------------------------------------------------------------
# TritVec: a batch of trits in two-plane encoding
# ----------------------------------------------------------------------
class TritVec:
    """An immutable batch of ``n`` trits in two-plane encoding.

    Lane ``j`` holds one ternary value; ``p0``/``p1`` are the
    can-be-0 / can-be-1 planes over all lanes, stored in the
    representation of ``backend`` (plain ints on the default ``bigint``
    backend -- plane ints passed to the constructor are validated and
    packed for whichever backend is selected).  Kleene connectives are
    provided as operators so a :class:`TritVec` behaves like ``n``
    trits evaluated simultaneously::

        >>> a = TritVec.from_trits("01M")
        >>> b = TritVec.broadcast("M", 3)
        >>> (a & b).to_str()
        '0MM'

    Equality and hashing are *content*-based across backends: the same
    trits on ``bigint`` and ``array`` planes compare equal.
    """

    __slots__ = ("n", "p0", "p1", "backend")

    def __init__(self, n: int, p0, p1, backend: BackendLike = None):
        be = get_backend(backend)
        if n < 0:
            raise ValueError("TritVec length must be >= 0")
        if isinstance(p0, int) and isinstance(p1, int):
            mask = (1 << n) - 1
            if not (0 <= p0 <= mask and 0 <= p1 <= mask):
                raise ValueError(f"planes out of range for {n} lanes")
            if p0 | p1 != mask:
                raise ValueError(
                    "every lane must encode a trit: plane union must be "
                    "all-ones"
                )
            p0 = be.from_int(p0, n)
            p1 = be.from_int(p1, n)
        else:
            p0 = be.coerce(p0, n)
            p1 = be.coerce(p1, n)
            if not be.eq(be.bor(p0, p1), be.ones(n)):
                raise ValueError(
                    "every lane must encode a trit: plane union must be "
                    "all-ones"
                )
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "p0", p0)
        object.__setattr__(self, "p1", p1)
        object.__setattr__(self, "backend", be)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("TritVec is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_trits(
        cls,
        values: Union[str, Iterable[TritLike]],
        backend: BackendLike = None,
    ) -> "TritVec":
        """Pack a sequence of trit-likes; lane ``j`` is ``values[j]``."""
        if isinstance(values, str):
            trits = [Trit.from_char(c) for c in values]
        else:
            trits = [
                v if isinstance(v, Trit) else Trit.coerce(v) for v in values
            ]
        n = len(trits)
        b0 = bytearray((n + 7) >> 3)
        b1 = bytearray((n + 7) >> 3)
        for j, t in enumerate(trits):
            bit = 1 << (j & 7)
            if t is not Trit.ONE:
                b0[j >> 3] |= bit
            if t is not Trit.ZERO:
                b1[j >> 3] |= bit
        be = get_backend(backend)
        vec = object.__new__(cls)
        object.__setattr__(vec, "n", n)
        object.__setattr__(vec, "p0", be.from_bytes(bytes(b0), n))
        object.__setattr__(vec, "p1", be.from_bytes(bytes(b1), n))
        object.__setattr__(vec, "backend", be)
        return vec

    @classmethod
    def broadcast(
        cls, value: TritLike, n: int, backend: BackendLike = None
    ) -> "TritVec":
        """All ``n`` lanes hold the same trit."""
        t = Trit.coerce(value)
        be = get_backend(backend)
        vec = object.__new__(cls)
        ones, zeros = be.ones(n), be.zeros(n)
        object.__setattr__(vec, "n", n)
        object.__setattr__(vec, "p0", zeros if t is Trit.ONE else ones)
        object.__setattr__(vec, "p1", zeros if t is Trit.ZERO else ones)
        object.__setattr__(vec, "backend", be)
        return vec

    @classmethod
    def _wrap(cls, n: int, p0: Plane, p1: Plane, be: PlaneBackend) -> "TritVec":
        """Internal: adopt already-valid native planes without rechecking."""
        vec = object.__new__(cls)
        object.__setattr__(vec, "n", n)
        object.__setattr__(vec, "p0", p0)
        object.__setattr__(vec, "p1", p1)
        object.__setattr__(vec, "backend", be)
        return vec

    # ------------------------------------------------------------------
    # Sequence-ish access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n

    def __getitem__(self, j: int) -> Trit:
        if j < 0:
            j += self.n
        if not 0 <= j < self.n:
            raise IndexError(f"lane {j} out of range for {self.n} lanes")
        be = self.backend
        z = be.get_lane(self.p0, j)
        o = be.get_lane(self.p1, j)
        if z and o:
            return Trit.META
        return Trit.ZERO if z else Trit.ONE

    def to_trits(self) -> List[Trit]:
        """All lanes as a list (bulk path; O(1) per lane via bytes)."""
        n = self.n
        be = self.backend
        b0 = be.to_bytes(self.p0, n)
        b1 = be.to_bytes(self.p1, n)
        out: List[Trit] = []
        for j in range(n):
            bit = 1 << (j & 7)
            z = b0[j >> 3] & bit
            o = b1[j >> 3] & bit
            out.append(Trit.META if (z and o) else (Trit.ZERO if z else Trit.ONE))
        return out

    def to_word(self) -> Word:
        return Word(self.to_trits())

    def to_str(self) -> str:
        return "".join(t.to_char() for t in self.to_trits())

    @property
    def metastable_lanes(self) -> int:
        """Number of lanes holding ``M`` (popcount of the plane overlap)."""
        be = self.backend
        return be.popcount(be.band(self.p0, self.p1))

    # ------------------------------------------------------------------
    # Kleene connectives (Table 3, batched)
    # ------------------------------------------------------------------
    def _check(self, other: "TritVec") -> "PlaneBackend":
        if self.n != other.n:
            raise ValueError(f"lane-count mismatch: {self.n} vs {other.n}")
        if self.backend is not other.backend:
            raise ValueError(
                f"plane-backend mismatch: {self.backend.name} vs "
                f"{other.backend.name}"
            )
        return self.backend

    def __and__(self, other: "TritVec") -> "TritVec":
        be = self._check(other)
        return TritVec._wrap(
            self.n,
            be.bor(self.p0, other.p0),
            be.band(self.p1, other.p1),
            be,
        )

    def __or__(self, other: "TritVec") -> "TritVec":
        be = self._check(other)
        return TritVec._wrap(
            self.n,
            be.band(self.p0, other.p0),
            be.bor(self.p1, other.p1),
            be,
        )

    def __invert__(self) -> "TritVec":
        return TritVec._wrap(self.n, self.p1, self.p0, self.backend)

    def xor(self, other: "TritVec") -> "TritVec":
        be = self._check(other)
        a0, a1, b0, b1 = self.p0, self.p1, other.p0, other.p1
        return TritVec._wrap(
            self.n,
            be.bor(be.band(a0, b0), be.band(a1, b1)),
            be.bor(be.band(a0, b1), be.band(a1, b0)),
            be,
        )

    # ------------------------------------------------------------------
    def _canonical(self) -> Tuple[int, bytes, bytes]:
        be = self.backend
        return (
            self.n,
            be.to_bytes(self.p0, self.n),
            be.to_bytes(self.p1, self.n),
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TritVec):
            if self.backend is other.backend and self.n == other.n:
                return self.backend.eq(self.p0, other.p0) and self.backend.eq(
                    self.p1, other.p1
                )
            return self._canonical() == other._canonical()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._canonical())

    def __repr__(self) -> str:
        if self.n <= 64:
            return f"TritVec('{self.to_str()}')"
        return f"TritVec(n={self.n})"


# ----------------------------------------------------------------------
# The compiled program
# ----------------------------------------------------------------------
# Primitive opcodes over (p0, p1) slot pairs.  Mirrored in
# repro.backends.base so backends can specialize the op sweep.
_OP_AND = 0
_OP_OR = 1
_OP_INV = 2
_OP_XOR = 3
_OP_BUF = 4

#: Single-lane plane encodings, for scalar wrappers.
_TRIT_PLANES = {
    Trit.ZERO: (1, 0),
    Trit.ONE: (0, 1),
    Trit.META: (1, 1),
}


def trit_from_planes(can0: int, can1: int) -> Trit:
    """The trit whose resolution set is described by the plane flags.

    Arguments are truthy/falsy (a masked bit or an any-lane reduction
    works directly).  The single place the inverse encoding lives.
    """
    if can0:
        return Trit.META if can1 else Trit.ZERO
    return Trit.ONE


class CompiledCircuit:
    """A :class:`Circuit` lowered to a flat two-plane bitwise program.

    Compilation walks the topological gate order once and emits a list
    of primitive ops over integer *slots* (one slot per net, plus
    temporaries for composite cells).  :meth:`evaluate_batch` then runs
    the whole program over a batch of input vectors, each bitwise op
    processing every vector simultaneously.  Plane storage and the op
    sweep belong to the program's ``backend``
    (:class:`~repro.backends.PlaneBackend`).

    Instances are immutable snapshots: they record the circuit's
    mutation ``version`` at compile time, and :func:`compile_circuit`
    recompiles automatically when the netlist changes.
    """

    def __init__(self, circuit: Circuit, backend: BackendLike = None):
        self.backend: PlaneBackend = get_backend(backend)
        self.name = circuit.name
        self.version = circuit.version
        order = circuit.topological_gates()  # validates structure

        slot_of: Dict[NetId, int] = {}
        for net in circuit.inputs:
            slot_of[net] = len(slot_of)
        self.n_inputs = len(slot_of)
        self.input_slots: Tuple[int, ...] = tuple(range(self.n_inputs))

        const_slots: List[Tuple[int, Trit]] = []
        for net, value in circuit.const_nets.items():
            slot_of[net] = len(slot_of)
            const_slots.append((slot_of[net], value))

        n_slots = len(slot_of)
        ops: List[Tuple[int, int, int, int]] = []

        def temp() -> int:
            nonlocal n_slots
            n_slots += 1
            return n_slots - 1

        def emit(op: int, dst: int, a: int, b: int = 0) -> int:
            ops.append((op, dst, a, b))
            return dst

        for gate in order:
            kind = gate.kind.name
            src = [slot_of[n] for n in gate.inputs]
            dst = n_slots
            n_slots += 1
            slot_of[gate.output] = dst
            if kind == "AND2":
                emit(_OP_AND, dst, src[0], src[1])
            elif kind == "OR2":
                emit(_OP_OR, dst, src[0], src[1])
            elif kind == "INV":
                emit(_OP_INV, dst, src[0])
            elif kind == "BUF":
                emit(_OP_BUF, dst, src[0])
            elif kind == "XOR2":
                emit(_OP_XOR, dst, src[0], src[1])
            elif kind == "NAND2":
                t = emit(_OP_AND, temp(), src[0], src[1])
                emit(_OP_INV, dst, t)
            elif kind == "NOR2":
                t = emit(_OP_OR, temp(), src[0], src[1])
                emit(_OP_INV, dst, t)
            elif kind == "XNOR2":
                t = emit(_OP_XOR, temp(), src[0], src[1])
                emit(_OP_INV, dst, t)
            elif kind == "AOI21":
                t1 = emit(_OP_AND, temp(), src[0], src[1])
                t2 = emit(_OP_OR, temp(), t1, src[2])
                emit(_OP_INV, dst, t2)
            elif kind == "OAI21":
                t1 = emit(_OP_OR, temp(), src[0], src[1])
                t2 = emit(_OP_AND, temp(), t1, src[2])
                emit(_OP_INV, dst, t2)
            elif kind == "MUX2":
                # (sel, a, b) -> (~sel & a) | (sel & b), as in kleene_mux.
                ns = emit(_OP_INV, temp(), src[0])
                t1 = emit(_OP_AND, temp(), ns, src[1])
                t2 = emit(_OP_AND, temp(), src[0], src[2])
                emit(_OP_OR, dst, t1, t2)
            elif kind in ("CONST0", "CONST1"):
                const_slots.append(
                    (dst, Trit.ONE if kind == "CONST1" else Trit.ZERO)
                )
            else:
                raise CircuitError(
                    f"{circuit.name}: cannot compile gate kind {kind!r}"
                )
        self.const_slots: Tuple[Tuple[int, Trit], ...] = tuple(const_slots)

        self.ops: Tuple[Tuple[int, int, int, int], ...] = tuple(ops)
        self.n_slots = n_slots
        self.output_slots: Tuple[int, ...] = tuple(
            slot_of[n] for n in circuit.outputs
        )
        self.n_outputs = len(self.output_slots)
        #: slot of every *named* net (inputs, constants, gate outputs) --
        #: temporaries introduced by composite-cell lowering are excluded.
        self.net_slot: Dict[NetId, int] = dict(slot_of)
        self.gate_count = sum(1 for g in order if g.kind.arity > 0)

    # ------------------------------------------------------------------
    # Core executor
    # ------------------------------------------------------------------
    def run_planes(
        self, input_planes: Sequence[Tuple[Plane, Plane]], n_vectors: int
    ) -> Tuple[List[Plane], List[Plane]]:
        """Execute the program on raw planes; returns all slot planes.

        ``input_planes[i]`` is the ``(p0, p1)`` pair for primary input
        ``i`` over ``n_vectors`` lanes -- plain ints and backend-native
        planes are both accepted (``backend.coerce``).  Callers project
        the returned per-slot plane lists through :attr:`output_slots`
        or :attr:`net_slot`; the planes are native to :attr:`backend`.
        """
        if len(input_planes) != self.n_inputs:
            raise ValueError(
                f"{self.name}: expected planes for {self.n_inputs} inputs, "
                f"got {len(input_planes)}"
            )
        be = self.backend
        zero = be.zeros(n_vectors)
        p0: List[Plane] = [zero] * self.n_slots
        p1: List[Plane] = [zero] * self.n_slots
        for slot, (a0, a1) in zip(self.input_slots, input_planes):
            p0[slot] = be.coerce(a0, n_vectors)
            p1[slot] = be.coerce(a1, n_vectors)
        if self.const_slots:
            full = be.ones(n_vectors)
            for slot, value in self.const_slots:
                if value is Trit.ONE:
                    p1[slot] = full
                else:
                    p0[slot] = full
        be.run_ops(self.ops, p0, p1)
        return p0, p1

    def run_select_diff(
        self,
        input_planes: Sequence[Tuple[Plane, Plane]],
        n_vectors: int,
        sel: Plane,
        nsel: Plane,
        pairs: Sequence[Tuple[int, int, int]],
    ) -> Tuple[Plane, int]:
        """Execute and compare outputs against input muxes in one call.

        Each ``pairs`` triple ``(out, a, b)`` names an *output index*
        and two *primary input indices*: output ``out`` is expected to
        equal ``(sel & input a) | (nsel & input b)`` lane-wise on both
        planes, where ``nsel`` is the tail-masked complement of ``sel``
        (both backend-native).  Returns the backend's
        ``(diff, mismatches)`` -- the OR over pairs of
        ``(got ^ expected)`` on both planes, plus its popcount
        (:meth:`PlaneBackend.run_ops_select_diff`).  The verification
        sweeps use this instead of :meth:`run_planes` because every
        expected two-sort output *is* such a mux; backends with fused
        native execution then never materialize intermediate or
        expected planes.  Results are bit-identical across backends.
        """
        if len(input_planes) != self.n_inputs:
            raise ValueError(
                f"{self.name}: expected planes for {self.n_inputs} inputs, "
                f"got {len(input_planes)}"
            )
        be = self.backend
        inputs = [
            (slot, be.coerce(a0, n_vectors), be.coerce(a1, n_vectors))
            for slot, (a0, a1) in zip(self.input_slots, input_planes)
        ]
        if self.const_slots:
            zero = be.zeros(n_vectors)
            full = be.ones(n_vectors)
            for slot, value in self.const_slots:
                if value is Trit.ONE:
                    inputs.append((slot, zero, full))
                else:
                    inputs.append((slot, full, zero))
        cmp = [
            (self.output_slots[out], self.input_slots[a], self.input_slots[b])
            for out, a, b in pairs
        ]
        return be.run_ops_select_diff(
            self.ops,
            self.n_slots,
            inputs,
            cmp,
            be.coerce(sel, n_vectors),
            be.coerce(nsel, n_vectors),
            n_vectors,
        )

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def encode_inputs(
        self, input_vectors: Sequence[Sequence[TritLike]]
    ) -> Tuple[List[Tuple[int, int]], int]:
        """Pack input vectors into per-input planes.

        Each vector supplies all primary inputs for one lane, in the
        circuit's input order (a :class:`Word` works directly).  Planes
        are returned as plain ints -- the backend-agnostic interchange
        form that :meth:`run_planes` coerces on entry.
        """
        n = len(input_vectors)
        ni = self.n_inputs
        nbytes = (n + 7) >> 3
        b0 = [bytearray(nbytes) for _ in range(ni)]
        b1 = [bytearray(nbytes) for _ in range(ni)]
        for j, vec in enumerate(input_vectors):
            if len(vec) != ni:
                raise ValueError(
                    f"{self.name}: expected {ni} input bits, got {len(vec)}"
                )
            byte = j >> 3
            bit = 1 << (j & 7)
            for i, t in enumerate(vec):
                if not isinstance(t, Trit):
                    t = Trit.coerce(t)
                if t is not Trit.ONE:
                    b0[i][byte] |= bit
                if t is not Trit.ZERO:
                    b1[i][byte] |= bit
        planes = [
            (int.from_bytes(b0[i], "little"), int.from_bytes(b1[i], "little"))
            for i in range(ni)
        ]
        return planes, n

    def decode_outputs(
        self, p0: Sequence[Plane], p1: Sequence[Plane], n_vectors: int
    ) -> List[Word]:
        """Unpack output planes into one :class:`Word` per lane."""
        be = self.backend
        outs = [
            (be.to_bytes(p0[s], n_vectors), be.to_bytes(p1[s], n_vectors))
            for s in self.output_slots
        ]
        meta, zero, one = Trit.META, Trit.ZERO, Trit.ONE
        words: List[Word] = []
        for j in range(n_vectors):
            byte = j >> 3
            bit = 1 << (j & 7)
            row = []
            for zb, ob in outs:
                if zb[byte] & bit:
                    row.append(meta if ob[byte] & bit else zero)
                else:
                    row.append(one)
            words.append(Word(row))
        return words

    def decode_lane(
        self, p0: Sequence[Plane], p1: Sequence[Plane], lane: int
    ) -> Word:
        """Output word of a single lane (per-lane slow path)."""
        be = self.backend
        return Word(
            trit_from_planes(be.get_lane(p0[s], lane), be.get_lane(p1[s], lane))
            for s in self.output_slots
        )

    # ------------------------------------------------------------------
    # Public batch APIs
    # ------------------------------------------------------------------
    def evaluate_batch(
        self, input_vectors: Sequence[Sequence[TritLike]]
    ) -> List[Word]:
        """Simulate all vectors at once; one output :class:`Word` each.

        ``input_vectors[j]`` covers the primary inputs (in order) for
        lane ``j``; the result's ``j``-th element is the full output
        vector of that lane.  Semantics are identical to calling the
        scalar :func:`repro.circuits.evaluate.evaluate_words` per
        vector, at a fraction of the cost.
        """
        planes, n = self.encode_inputs(input_vectors)
        p0, p1 = self.run_planes(planes, n)
        return self.decode_outputs(p0, p1, n)

    def run_tritvecs(self, inputs: Sequence[TritVec]) -> List[TritVec]:
        """Batch-evaluate with :class:`TritVec` per input net.

        ``inputs[i]`` carries input ``i`` across all lanes and must live
        on this program's backend; returns one :class:`TritVec` per
        primary output.  This is the zero-copy path used by the batched
        sorting-network simulator.
        """
        if not inputs and self.n_inputs:
            raise ValueError(f"{self.name}: expected {self.n_inputs} inputs")
        be = self.backend
        n = inputs[0].n if inputs else 0
        for tv in inputs:
            if tv.n != n:
                raise ValueError("all input TritVecs must have equal lanes")
            if tv.backend is not be:
                raise ValueError(
                    f"{self.name}: input TritVec on backend "
                    f"{tv.backend.name!r}, program compiled for {be.name!r}"
                )
        planes = [(tv.p0, tv.p1) for tv in inputs]
        p0, p1 = self.run_planes(planes, n)
        # detach: keep only the output planes alive, not the whole
        # per-run scratch storage some backends return views into.
        return [
            TritVec._wrap(n, be.detach(p0[s]), be.detach(p1[s]), be)
            for s in self.output_slots
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledCircuit({self.name!r}, inputs={self.n_inputs}, "
            f"outputs={self.n_outputs}, ops={len(self.ops)}, "
            f"backend={self.backend.name!r})"
        )


def compile_circuit(
    circuit: Circuit, backend: BackendLike = None
) -> CompiledCircuit:
    """Compile ``circuit``, caching the program on the netlist itself.

    The cache is keyed on ``(circuit.version, backend.name)``: adding a
    gate, input, output, or constant invalidates every entry and the
    next call recompiles; requesting a different plane backend compiles
    a sibling program without evicting the others.  Identity-keyed
    caching means independent circuits never share programs even when
    structurally equal.
    """
    be = get_backend(backend)
    cache: Optional[Dict[str, CompiledCircuit]] = getattr(
        circuit, "_compiled_cache", None
    )
    if not isinstance(cache, dict) or any(
        p.version != circuit.version for p in cache.values()
    ):
        cache = {}
        circuit._compiled_cache = cache
    program = cache.get(be.name)
    # `backend is not be` catches a re-registered backend instance under
    # the same name (tests swap the numpy/fallback array variants).
    if program is None or program.backend is not be:
        program = CompiledCircuit(circuit, be)
        cache[be.name] = program
    return program
