"""Reusable gate-level construction helpers.

Small structural idioms shared by the 2-sort builders and the baselines:
balanced AND/OR trees, the MC-safe AND-OR multiplexer, and bit-vector
plumbing.  All helpers append gates to a caller-supplied
:class:`~repro.circuits.netlist.Circuit` and return output nets.
"""

from __future__ import annotations

from typing import List, Sequence

from .gates import AND2, INV, MUX2, OR2, XOR2
from .netlist import Circuit, NetId


def inv(circuit: Circuit, a: NetId) -> NetId:
    """Inverter."""
    return circuit.add_gate(INV, [a])


def and2(circuit: Circuit, a: NetId, b: NetId) -> NetId:
    """Fan-in-2 AND."""
    return circuit.add_gate(AND2, [a, b])


def or2(circuit: Circuit, a: NetId, b: NetId) -> NetId:
    """Fan-in-2 OR."""
    return circuit.add_gate(OR2, [a, b])


def and_tree(circuit: Circuit, nets: Sequence[NetId]) -> NetId:
    """Balanced AND tree; depth ``ceil(log2 n)`` levels."""
    return _tree(circuit, list(nets), AND2)

def or_tree(circuit: Circuit, nets: Sequence[NetId]) -> NetId:
    """Balanced OR tree; depth ``ceil(log2 n)`` levels."""
    return _tree(circuit, list(nets), OR2)


def _tree(circuit: Circuit, nets: List[NetId], kind) -> NetId:
    if not nets:
        raise ValueError("tree over zero nets")
    while len(nets) > 1:
        nxt: List[NetId] = []
        for i in range(0, len(nets) - 1, 2):
            nxt.append(circuit.add_gate(kind, [nets[i], nets[i + 1]]))
        if len(nets) % 2:
            nxt.append(nets[-1])
        nets = nxt
    return nets[0]


def mux_mc(circuit: Circuit, sel: NetId, a: NetId, b: NetId) -> NetId:
    """MC-safe 2:1 mux out of AND/OR/INV: ``(~sel & a) | (sel & b)``.

    This is the ``muxM``/``cmux`` of [6]: when ``sel`` is metastable but
    ``a == b`` stably, the stable value is forwarded.  3 levels, 4 gates.
    """
    nsel = inv(circuit, sel)
    return or2(circuit, and2(circuit, nsel, a), and2(circuit, sel, b))


def mux_cell(circuit: Circuit, sel: NetId, a: NetId, b: NetId) -> NetId:
    """Library MUX2 cell (used by the non-restricted binary baseline)."""
    return circuit.add_gate(MUX2, [sel, a, b])


def xor_cell(circuit: Circuit, a: NetId, b: NetId) -> NetId:
    """Library XOR2 cell (never masks metastability)."""
    return circuit.add_gate(XOR2, [a, b])


def mux_word_mc(
    circuit: Circuit, sel: NetId, a: Sequence[NetId], b: Sequence[NetId]
) -> List[NetId]:
    """Bitwise MC mux over equal-width vectors."""
    if len(a) != len(b):
        raise ValueError("mux over words of unequal width")
    return [mux_mc(circuit, sel, x, y) for x, y in zip(a, b)]


def mux_word_cell(
    circuit: Circuit, sel: NetId, a: Sequence[NetId], b: Sequence[NetId]
) -> List[NetId]:
    """Bitwise MUX2-cell mux over equal-width vectors."""
    if len(a) != len(b):
        raise ValueError("mux over words of unequal width")
    return [mux_cell(circuit, sel, x, y) for x, y in zip(a, b)]
