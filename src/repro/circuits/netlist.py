"""Flat gate-level netlists with named nets.

A :class:`Circuit` is a DAG of gate instances over string-named nets,
with ordered primary inputs and outputs.  Generators (the 2-sort
builders, the PPC template, sorting-network composition) create fresh
nets through a :class:`~repro.circuits.wire.NameScope` and may
*instantiate* one circuit inside another, which copies gates under a
renamed hierarchy -- the Python analogue of flattening a structural VHDL
design before hand-mapping (paper Section 6).
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..ternary.trit import Trit
from .gates import ALL_GATE_KINDS, CONST0, CONST1, GateKind
from .wire import NameScope, NetId


@dataclass(frozen=True)
class Gate:
    """One gate instance: ``output = kind(*inputs)``."""

    kind: GateKind
    inputs: Tuple[NetId, ...]
    output: NetId

    def __post_init__(self):
        if len(self.inputs) != self.kind.arity:
            raise ValueError(
                f"{self.kind.name} expects {self.kind.arity} inputs, "
                f"got {len(self.inputs)}"
            )


class CircuitError(ValueError):
    """Structural problem in a netlist (multiple drivers, cycles, ...)."""


class Circuit:
    """A combinational netlist.

    Nets are created implicitly by driving or reading them; every net
    must have exactly one driver (a gate, a primary input, or a
    constant).  Primary outputs are an ordered list of nets.
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.scope = NameScope()
        self._gates: List[Gate] = []
        self._driver: Dict[NetId, Gate] = {}
        self._inputs: List[NetId] = []
        self._input_set: set = set()
        self._outputs: List[NetId] = []
        self._const_nets: Dict[NetId, Trit] = {}
        self._topo_cache: Optional[List[Gate]] = None
        self._input_frozen: Optional[frozenset] = None
        self._version = 0
        self._hash_cache: Optional[Tuple[int, str]] = None

    def __getstate__(self):
        # Compiled programs (repro.circuits.compiled attaches them as
        # `_compiled_cache`) are per-process artifacts: pool workers
        # recompile in their initializer, and shipping them would drag
        # the plane backend across the pickle boundary.
        state = self.__dict__.copy()
        state.pop("_compiled_cache", None)
        return state

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, net: Optional[NetId] = None, base: str = "in") -> NetId:
        """Declare a primary input; returns its net id."""
        if net is None:
            net = self.scope.net(base)
        if net in self._input_set:
            raise CircuitError(f"duplicate primary input {net!r}")
        if net in self._driver or net in self._const_nets:
            raise CircuitError(f"net {net!r} already driven")
        self._inputs.append(net)
        self._input_set.add(net)
        self._topo_cache = None
        self._input_frozen = None
        self._version += 1
        return net

    def add_inputs(self, count: int, base: str = "in") -> List[NetId]:
        """Declare ``count`` primary inputs with a shared base name."""
        return [self.add_input(base=base) for _ in range(count)]

    def add_output(self, net: NetId) -> NetId:
        """Mark an existing net as a primary output (order preserved)."""
        self._outputs.append(net)
        self._version += 1
        return net

    def add_outputs(self, nets: Iterable[NetId]) -> List[NetId]:
        return [self.add_output(n) for n in nets]

    def const(self, value: Trit) -> NetId:
        """A net tied to a constant 0 or 1 (shared per circuit)."""
        if value is Trit.META:
            raise CircuitError("cannot tie a net to constant M")
        kind = CONST1 if value is Trit.ONE else CONST0
        for net, v in self._const_nets.items():
            if v is value:
                return net
        net = self.scope.net(f"const{value.to_int()}")
        self._const_nets[net] = value
        self._topo_cache = None
        self._version += 1
        return net

    def add_gate(
        self,
        kind: GateKind,
        inputs: Sequence[NetId],
        output: Optional[NetId] = None,
    ) -> NetId:
        """Instantiate a gate; returns (and possibly creates) its output net."""
        if output is None:
            output = self.scope.net(kind.name.lower())
        if output in self._driver or output in self._input_set or output in self._const_nets:
            raise CircuitError(f"net {output!r} already driven")
        gate = Gate(kind, tuple(inputs), output)
        self._gates.append(gate)
        self._driver[output] = gate
        self._topo_cache = None
        self._version += 1
        return output

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> Tuple[NetId, ...]:
        return tuple(self._inputs)

    @property
    def input_set(self) -> frozenset:
        """The primary inputs as a set (membership tests in hot loops).

        Cached; rebuilt only after :meth:`add_input`.
        """
        if self._input_frozen is None:
            self._input_frozen = frozenset(self._input_set)
        return self._input_frozen

    @property
    def version(self) -> int:
        """Mutation counter; bumps on every structural change.

        Consumers that cache derived artefacts (e.g. the bit-parallel
        compiler in :mod:`repro.circuits.compiled`) key their caches on
        this value so a mutated netlist is never served stale results.
        """
        return self._version

    def content_hash(self) -> str:
        """Stable digest of the netlist *structure* (hex, 16 chars).

        Covers exactly what determines behaviour: input order, output
        order, constant ties, and every gate as ``kind(inputs)->output``
        in insertion order.  Unlike :attr:`version` -- an in-process
        mutation counter that two different circuits can coincidentally
        share -- the content hash identifies the circuit itself, so it
        is safe as a cache key across processes and hosts: a rebuilt
        identical netlist hashes the same, any structural edit hashes
        differently, and a distributed worker can check that the
        circuit it unpickled is the one the coordinator is sweeping.
        Cached per :attr:`version`, so repeated calls on an unmutated
        circuit are O(1).
        """
        cached = getattr(self, "_hash_cache", None)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        h = hashlib.sha256()

        def feed(tag: bytes, *parts: str) -> None:
            # Length-prefixed fields: no delimiter a net name could
            # contain can make two different structures hash the same.
            h.update(tag)
            for part in parts:
                data = part.encode()
                h.update(len(data).to_bytes(4, "little"))
                h.update(data)

        for net in self._inputs:
            feed(b"i", net)
        for net, value in sorted(self._const_nets.items()):
            feed(b"c", net, value.to_char())
        for gate in self._gates:
            feed(b"g", gate.kind.name, str(len(gate.inputs)), *gate.inputs)
            feed(b">", gate.output)
        for net in self._outputs:
            feed(b"o", net)
        digest = h.hexdigest()[:16]
        self._hash_cache = (self._version, digest)
        return digest

    # ------------------------------------------------------------------
    # Per-region (output-cone) structure
    # ------------------------------------------------------------------
    def _cone(self, output_index: int) -> Tuple[List[Gate], Dict[NetId, Trit]]:
        """Gates and constants feeding primary output ``output_index``.

        Backward reachability over the driver map from the output's
        root net; gates come back in insertion order so two circuits
        built the same way produce identical cones.
        """
        if not 0 <= output_index < len(self._outputs):
            raise CircuitError(
                f"output index {output_index} out of range "
                f"(circuit has {len(self._outputs)} outputs)"
            )
        root = self._outputs[output_index]
        seen: set = set()
        stack = [root]
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            gate = self._driver.get(net)
            if gate is not None:
                stack.extend(gate.inputs)
        cone_gates = [g for g in self._gates if g.output in seen]
        cone_consts = {
            net: v for net, v in self._const_nets.items() if net in seen
        }
        return cone_gates, cone_consts

    def region_hashes(self) -> Tuple[str, ...]:
        """One structural digest per primary output's fan-in cone.

        A region is everything that determines one output: the primary
        inputs (all of them, in order -- lane semantics depend on input
        positions), the constants and gates reachable backward from the
        output, and the output's root net.  Hashed with the same
        length-prefixed scheme as :meth:`content_hash`, so a structural
        edit changes exactly the digests of the outputs whose cones
        contain the edited gate.  That is what makes per-region result
        keys incremental: re-verification after an edit only misses on
        the affected cones.  Cached per :attr:`version`.
        """
        cached = getattr(self, "_region_hash_cache", None)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        digests = []
        for idx in range(len(self._outputs)):
            cone_gates, cone_consts = self._cone(idx)
            h = hashlib.sha256()

            def feed(tag: bytes, *parts: str) -> None:
                h.update(tag)
                for part in parts:
                    data = part.encode()
                    h.update(len(data).to_bytes(4, "little"))
                    h.update(data)

            for net in self._inputs:
                feed(b"i", net)
            for net, value in sorted(cone_consts.items()):
                feed(b"c", net, value.to_char())
            for gate in cone_gates:
                feed(b"g", gate.kind.name, str(len(gate.inputs)),
                     *gate.inputs)
                feed(b">", gate.output)
            feed(b"o", self._outputs[idx])
            digests.append(h.hexdigest()[:16])
        result = tuple(digests)
        self._region_hash_cache = (self._version, result)
        return result

    def extract_cone(self, output_index: int) -> "Circuit":
        """A standalone circuit computing just one primary output.

        The extracted circuit keeps *all* primary inputs in their
        original order (so input-lane encodings line up with the parent
        sweep), the cone's constants and gates under their original net
        names, and exposes a single output: the requested one.  Used by
        the region sweep to verify one output cone at a time.
        """
        cone_gates, cone_consts = self._cone(output_index)
        sub = Circuit(name=f"{self.name}#o{output_index}")
        for net in self._inputs:
            sub.add_input(net=net)
        # Copy constants under their original names: Circuit.const()
        # would mint fresh names, breaking gate input references.
        # Direct private access is why this lives in netlist.py.
        for net, value in cone_consts.items():
            sub._const_nets[net] = value
            sub._version += 1
        for gate in cone_gates:
            sub.add_gate(gate.kind, gate.inputs, output=gate.output)
        sub.add_output(self._outputs[output_index])
        return sub

    def copy(self) -> "Circuit":
        """A structurally identical, name-preserving, independent copy.

        All net names are kept verbatim (the copy hashes identically to
        the original), so the copy is the right starting point for a
        controlled structural edit -- e.g. the incremental
        re-verification demo splices gates into one output cone of a
        copy and checks that only that region's digest changes.
        """
        dup = Circuit(name=self.name)
        for net in self._inputs:
            dup.add_input(net=net)
        for net, value in self._const_nets.items():
            dup._const_nets[net] = value
            dup._version += 1
        for gate in self._gates:
            dup.add_gate(gate.kind, gate.inputs, output=gate.output)
        for net in self._outputs:
            dup.add_output(net)
        return dup

    def replace_output(self, index: int, net: NetId) -> None:
        """Re-point primary output ``index`` at a different net."""
        if not 0 <= index < len(self._outputs):
            raise CircuitError(
                f"output index {index} out of range "
                f"(circuit has {len(self._outputs)} outputs)"
            )
        self._outputs[index] = net
        self._topo_cache = None
        self._version += 1

    @property
    def outputs(self) -> Tuple[NetId, ...]:
        return tuple(self._outputs)

    @property
    def gates(self) -> Tuple[Gate, ...]:
        return tuple(self._gates)

    @property
    def const_nets(self) -> Mapping[NetId, Trit]:
        return dict(self._const_nets)

    def gate_count(self, logic_only: bool = True) -> int:
        """Number of gates; constants excluded when ``logic_only``."""
        if logic_only:
            return sum(1 for g in self._gates if g.kind.arity > 0)
        return len(self._gates)

    def gate_histogram(self) -> Dict[str, int]:
        """Gate count per kind name (logic gates only)."""
        hist: Dict[str, int] = {}
        for g in self._gates:
            if g.kind.arity == 0:
                continue
            hist[g.kind.name] = hist.get(g.kind.name, 0) + 1
        return hist

    def fanout(self) -> Dict[NetId, int]:
        """Downstream pin count per net (primary outputs count as 1 pin)."""
        counts: Dict[NetId, int] = {}
        for g in self._gates:
            for net in g.inputs:
                counts[net] = counts.get(net, 0) + 1
        for net in self._outputs:
            counts[net] = counts.get(net, 0) + 1
        return counts

    def driver_of(self, net: NetId) -> Optional[Gate]:
        return self._driver.get(net)

    def is_mc_safe(self) -> bool:
        """True iff only AND2/OR2/INV cells are used (paper's restriction)."""
        return all(g.kind.mc_safe for g in self._gates if g.kind.arity > 0)

    # ------------------------------------------------------------------
    # Topological order
    # ------------------------------------------------------------------
    def topological_gates(self) -> List[Gate]:
        """Gates in dependency order; raises :class:`CircuitError` on cycles
        or undriven nets.

        Single-pass Kahn's algorithm with an index-ordered ready-queue:
        each gate tracks how many of its input nets are not yet driven;
        a min-heap over gate indices releases gates as their last
        dependency resolves.  O((gates + pins) log gates) total, versus
        the O(gates^2) worst case of a repeated-scan sort, and the
        index-ordered queue keeps the emitted order deterministic.
        """
        if self._topo_cache is not None:
            return self._topo_cache

        ready = set(self._input_set)
        ready.update(self._const_nets)
        waiting_on: Dict[NetId, List[int]] = {}
        missing: List[int] = [0] * len(self._gates)
        heap: List[int] = []
        for idx, gate in enumerate(self._gates):
            need = 0
            for net in gate.inputs:
                if net not in ready:
                    need += 1
                    waiting_on.setdefault(net, []).append(idx)
            missing[idx] = need
            if need == 0:
                heap.append(idx)
        heapq.heapify(heap)

        order: List[Gate] = []
        while heap:
            idx = heapq.heappop(heap)
            gate = self._gates[idx]
            order.append(gate)
            ready.add(gate.output)
            for waiter in waiting_on.pop(gate.output, ()):
                missing[waiter] -= 1
                if missing[waiter] == 0:
                    heapq.heappush(heap, waiter)

        if len(order) != len(self._gates):
            stuck = [g for i, g in enumerate(self._gates) if missing[i] > 0]
            undriven = {
                net
                for gate in stuck
                for net in gate.inputs
                if net not in ready and net not in self._driver
            }
            if undriven:
                raise CircuitError(f"undriven nets: {sorted(undriven)[:5]}")
            raise CircuitError("combinational cycle detected")
        for net in self._outputs:
            if net not in ready:
                raise CircuitError(f"primary output {net!r} is undriven")
        self._topo_cache = order
        return order

    # ------------------------------------------------------------------
    # Hierarchy: instantiate a subcircuit into this one
    # ------------------------------------------------------------------
    def instantiate(
        self,
        sub: "Circuit",
        input_nets: Sequence[NetId],
        instance_base: str = "u",
    ) -> List[NetId]:
        """Copy ``sub`` into this circuit, binding its primary inputs.

        ``input_nets[i]`` drives ``sub.inputs[i]``.  Returns the nets in
        this circuit corresponding to ``sub.outputs`` (in order).
        """
        if len(input_nets) != len(sub.inputs):
            raise CircuitError(
                f"instance of {sub.name!r} expects {len(sub.inputs)} inputs, "
                f"got {len(input_nets)}"
            )
        inst = self.scope.child(instance_base)
        mapping: Dict[NetId, NetId] = dict(zip(sub.inputs, input_nets))
        for net, value in sub.const_nets.items():
            mapping[net] = self.const(value)
        for gate in sub.topological_gates():
            new_inputs = tuple(mapping[n] for n in gate.inputs)
            new_output = inst.net("n")
            self.add_gate(gate.kind, new_inputs, new_output)
            mapping[gate.output] = new_output
        return [mapping[n] for n in sub.outputs]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Circuit({self.name!r}, inputs={len(self._inputs)}, "
            f"outputs={len(self._outputs)}, gates={self.gate_count()})"
        )
