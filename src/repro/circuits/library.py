"""Standard-cell library model: per-cell area and a linear delay model.

The paper's flow (Section 6) hand-maps the MC designs onto three cells of
the NanGate 45 nm Open Cell Library -- INV_X1, AND2_X1, OR2_X1 -- whose
transistor-level behaviour computes the metastable closure of the
respective Boolean connective, then reports *post-layout area* (µm²) and
*pre-layout delay* (ps) from Cadence Encounter.

We cannot run Encounter, so we substitute a calibrated analytical model
(documented in DESIGN.md and EXPERIMENTS.md):

* ``area(circuit) = Σ_cells effective_area(cell)``, where the effective
  areas of AND2_X1 / OR2_X1 (1.4875 µm²) and INV_X1 (0.8703 µm²) were
  fitted by least squares against the four "This paper" rows of Table 7
  (the fit reproduces those areas to within 0.1%).  The ratio to the raw
  NanGate cell areas (0.798 / 0.532 µm²) is the placement overhead of
  the paper's layout, about 1.83x.
* ``delay(circuit)`` = longest path where each gate contributes an
  intrinsic delay plus a fanout-proportional load term -- the standard
  linear (unit-load) gate delay model.  Intrinsics are calibrated so the
  2-sort(B) delays land in the ballpark of Table 7; the *shape*
  (logarithmic growth in B, ordering of the three designs) is what the
  reproduction preserves.

Cells outside the hand-mapped trio (used only by the ``Bin-comp``
baseline, mirroring the paper's unrestricted synthesis of the binary
design) get NanGate-proportional effective areas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

#: Fitted placement-overhead factor relative to raw NanGate areas.
LAYOUT_OVERHEAD = 1.864


@dataclass(frozen=True)
class Cell:
    """Physical model of one standard cell."""

    name: str
    #: effective (post-layout) area in µm²
    area_um2: float
    #: intrinsic propagation delay in ps
    delay_ps: float
    #: additional delay per unit of fanout load, in ps
    load_ps: float = 0.0

    def delay_with_fanout(self, fanout: int) -> float:
        """Delay in ps when driving ``fanout`` downstream pins."""
        return self.delay_ps + self.load_ps * max(fanout, 1)


class CellLibrary:
    """Maps gate-kind names to :class:`Cell` models."""

    def __init__(self, name: str, cells: Mapping[str, Cell]):
        self.name = name
        self._cells: Dict[str, Cell] = dict(cells)

    def __getitem__(self, kind_name: str) -> Cell:
        try:
            return self._cells[kind_name]
        except KeyError:
            raise KeyError(
                f"cell library {self.name!r} has no cell for gate kind {kind_name!r}"
            ) from None

    def __contains__(self, kind_name: str) -> bool:
        return kind_name in self._cells

    def area(self, kind_name: str) -> float:
        return self[kind_name].area_um2

    def delay(self, kind_name: str, fanout: int = 1) -> float:
        return self[kind_name].delay_with_fanout(fanout)


def _cell(name: str, raw_area: float, delay: float, load: float) -> Cell:
    return Cell(name, round(raw_area * LAYOUT_OVERHEAD, 4), delay, load)


#: Calibrated NanGate-45nm-style library (see module docstring).
#: AND2/OR2/INV areas are the Table 7 least-squares fit; the rest scale
#: raw NanGate datasheet areas by ``LAYOUT_OVERHEAD``.
NANGATE45 = CellLibrary(
    "nangate45-calibrated",
    {
        "INV": Cell("INV_X1", 0.8703, 14.0, 1.9),
        "AND2": Cell("AND2_X1", 1.4875, 34.3, 2.8),
        "OR2": Cell("OR2_X1", 1.4875, 34.3, 2.8),
        "BUF": _cell("BUF_X1", 0.798, 22.0, 1.5),
        "NAND2": _cell("NAND2_X1", 0.532, 14.0, 1.8),
        "NOR2": _cell("NOR2_X1", 0.532, 16.0, 1.8),
        "XOR2": _cell("XOR2_X1", 1.596, 42.0, 2.5),
        "XNOR2": _cell("XNOR2_X1", 1.596, 42.0, 2.5),
        "AOI21": _cell("AOI21_X1", 0.798, 24.0, 2.0),
        "OAI21": _cell("OAI21_X1", 0.798, 24.0, 2.0),
        "MUX2": _cell("MUX2_X1", 1.862, 38.0, 2.5),
        "CONST0": Cell("TIE0", 0.0, 0.0, 0.0),
        "CONST1": Cell("TIE1", 0.0, 0.0, 0.0),
    },
)

#: Alias used throughout benches; swap to explore other technologies.
DEFAULT_LIBRARY = NANGATE45
