"""Gate-level netlist framework with three-valued simulation.

Provides the circuit substrate the paper's designs are expressed in:
gate kinds with metastable-closure semantics (Table 3), flat netlists
with hierarchy-by-instantiation, topological three-valued simulation,
and cost analysis (gate count / area / critical-path delay) modelled on
the paper's NanGate 45 nm flow (Section 6).

Simulation runs on two interchangeable engines: the scalar reference
interpreter (:func:`evaluate_interpreted`) and the bit-parallel
two-plane compiler (:mod:`repro.circuits.compiled`), which batches
thousands of input vectors per gate visit; the public scalar API
(:func:`evaluate`, :func:`evaluate_words`) is a width-1 wrapper over
the compiled program.
"""

from .wire import NameScope, NetId
from .gates import (
    ALL_GATE_KINDS,
    AND2,
    AOI21,
    BUF,
    CONST0,
    CONST1,
    GateKind,
    INV,
    LOGIC_GATE_KINDS,
    MC_SAFE_KINDS,
    MUX2,
    NAND2,
    NOR2,
    OAI21,
    OR2,
    XNOR2,
    XOR2,
)
from .library import DEFAULT_LIBRARY, LAYOUT_OVERHEAD, NANGATE45, Cell, CellLibrary
from .netlist import Circuit, CircuitError, Gate
from .compiled import CompiledCircuit, TritVec, compile_circuit
from .evaluate import (
    evaluate,
    evaluate_all_resolutions,
    evaluate_interpreted,
    evaluate_outputs,
    evaluate_words,
    weaker_than_closure,
)
from .analysis import (
    CostReport,
    critical_path,
    critical_path_delay,
    logic_depth,
    report,
    total_area,
)
from .builder import (
    and2,
    and_tree,
    inv,
    mux_cell,
    mux_mc,
    mux_word_cell,
    mux_word_mc,
    or2,
    or_tree,
    xor_cell,
)
from .verify import Mismatch, assert_equivalent, check_equivalence
from .export import to_dot, to_verilog

__all__ = [
    "to_dot",
    "to_verilog",
    "NameScope",
    "NetId",
    "ALL_GATE_KINDS",
    "AND2",
    "AOI21",
    "BUF",
    "CONST0",
    "CONST1",
    "GateKind",
    "INV",
    "LOGIC_GATE_KINDS",
    "MC_SAFE_KINDS",
    "MUX2",
    "NAND2",
    "NOR2",
    "OAI21",
    "OR2",
    "XNOR2",
    "XOR2",
    "DEFAULT_LIBRARY",
    "LAYOUT_OVERHEAD",
    "NANGATE45",
    "Cell",
    "CellLibrary",
    "Circuit",
    "CircuitError",
    "CompiledCircuit",
    "Gate",
    "TritVec",
    "compile_circuit",
    "evaluate",
    "evaluate_all_resolutions",
    "evaluate_interpreted",
    "evaluate_outputs",
    "evaluate_words",
    "weaker_than_closure",
    "CostReport",
    "critical_path",
    "critical_path_delay",
    "logic_depth",
    "report",
    "total_area",
    "and2",
    "and_tree",
    "inv",
    "mux_cell",
    "mux_mc",
    "mux_word_cell",
    "mux_word_mc",
    "or2",
    "or_tree",
    "xor_cell",
    "Mismatch",
    "assert_equivalent",
    "check_equivalence",
]
