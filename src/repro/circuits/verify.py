"""Equivalence checking: circuit vs. behavioural specification.

The paper validates its designs by proofs plus ModelSim simulation; we
go further and *exhaustively* check gate-level circuits against their
behavioural specifications over explicit input domains (all pairs of
valid strings for small B; random samples at large B live in the
hypothesis-based test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..ternary.word import Word
from .evaluate import evaluate_words
from .netlist import Circuit


@dataclass(frozen=True)
class Mismatch:
    """One counterexample from an equivalence check."""

    inputs: Tuple[Word, ...]
    expected: Word
    actual: Word

    def __str__(self) -> str:
        ins = ", ".join(str(w) for w in self.inputs)
        return f"inputs ({ins}): expected {self.expected}, got {self.actual}"


def check_equivalence(
    circuit: Circuit,
    spec: Callable[..., Word],
    domain: Iterable[Tuple[Word, ...]],
    max_mismatches: int = 10,
) -> List[Mismatch]:
    """Compare circuit simulation against ``spec`` over ``domain``.

    ``spec`` receives the same word tuple and must return the full
    expected output vector as one :class:`Word`.  Returns collected
    mismatches (empty list = equivalent on the domain).
    """
    mismatches: List[Mismatch] = []
    for words in domain:
        actual = evaluate_words(circuit, *words)
        expected = spec(*words)
        if actual != expected:
            mismatches.append(Mismatch(tuple(words), expected, actual))
            if len(mismatches) >= max_mismatches:
                break
    return mismatches


def assert_equivalent(
    circuit: Circuit,
    spec: Callable[..., Word],
    domain: Iterable[Tuple[Word, ...]],
) -> None:
    """Raise ``AssertionError`` with the first few counterexamples, if any."""
    mismatches = check_equivalence(circuit, spec, domain)
    if mismatches:
        detail = "\n  ".join(str(m) for m in mismatches[:5])
        raise AssertionError(
            f"{circuit.name}: {len(mismatches)}+ mismatches vs spec:\n  {detail}"
        )
