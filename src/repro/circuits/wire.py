"""Net identifiers and hierarchical name scopes for netlists.

Nets are plain strings; :class:`NameScope` provides collision-free
hierarchical names (``top/ppc/l2/op3/and1``) so that generator code can
instantiate the same subcircuit template many times inside one flat
:class:`~repro.circuits.netlist.Circuit` -- mirroring how the paper's
VHDL design is flattened before hand-mapping to standard cells
(Section 6).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List

NetId = str


class NameScope:
    """Generates unique hierarchical net/instance names.

    >>> scope = NameScope("top")
    >>> scope.net("s")
    'top/s0'
    >>> scope.net("s")
    'top/s1'
    >>> child = scope.child("ppc")
    >>> child.net("op")
    'top/ppc0/op0'
    """

    def __init__(self, prefix: str = ""):
        self._prefix = prefix
        self._counters: Dict[str, Iterator[int]] = {}

    def _next(self, base: str) -> int:
        if base not in self._counters:
            self._counters[base] = itertools.count()
        return next(self._counters[base])

    def net(self, base: str) -> NetId:
        """A fresh net name under this scope."""
        name = f"{base}{self._next(base)}"
        return f"{self._prefix}/{name}" if self._prefix else name

    def nets(self, base: str, count: int) -> List[NetId]:
        """A list of ``count`` fresh net names sharing a base."""
        return [self.net(base) for _ in range(count)]

    def child(self, base: str) -> "NameScope":
        """A nested scope for a subcircuit instance."""
        name = f"{base}{self._next(base)}"
        prefix = f"{self._prefix}/{name}" if self._prefix else name
        return NameScope(prefix)

    @property
    def prefix(self) -> str:
        return self._prefix
