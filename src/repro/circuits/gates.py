"""Gate kinds and their three-valued semantics.

The metastability-containing designs of the paper restrict themselves to
fan-in-2 AND, OR, and inverters (Section 6: cells INV_X1, AND2_X1,
OR2_X1, whose transistor-level behaviour computes the metastable closure
of the Boolean connective).  The non-containing ``Bin-comp`` baseline is
allowed the richer gate set a synthesis tool would use, including
XOR/XNOR and And-Or-Invert cells; in the worst-case model some of those
cells still only compute the closure of *their own* Boolean function,
which is precisely why the composed binary comparator fails to contain
metastability.

Every :class:`GateKind` carries an evaluation function over
:class:`~repro.ternary.trit.Trit` inputs, so circuit simulation and
closure semantics live in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..ternary.kleene import (
    kleene_and,
    kleene_aoi21,
    kleene_mux,
    kleene_nand,
    kleene_nor,
    kleene_not,
    kleene_oai21,
    kleene_or,
    kleene_xnor,
    kleene_xor,
)
from ..ternary.trit import Trit

EvalFn = Callable[..., Trit]


@dataclass(frozen=True)
class GateKind:
    """A gate type: name, arity, and ternary evaluation function."""

    name: str
    arity: int
    evaluate: EvalFn
    #: True if the cell belongs to the restricted MC-safe set used by the
    #: paper's hand-mapped designs (AND2/OR2/INV only).
    mc_safe: bool = False

    def __call__(self, *inputs: Trit) -> Trit:
        if len(inputs) != self.arity:
            raise ValueError(
                f"{self.name} expects {self.arity} inputs, got {len(inputs)}"
            )
        return self.evaluate(*inputs)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"GateKind({self.name})"


def _buf(a: Trit) -> Trit:
    return a


def _const0() -> Trit:
    return Trit.ZERO


def _const1() -> Trit:
    return Trit.ONE


#: The restricted, metastability-containing cell set (paper Section 6).
INV = GateKind("INV", 1, kleene_not, mc_safe=True)
AND2 = GateKind("AND2", 2, kleene_and, mc_safe=True)
OR2 = GateKind("OR2", 2, kleene_or, mc_safe=True)

#: Extended cells, used by the Bin-comp baseline's synthesis-style flow.
BUF = GateKind("BUF", 1, _buf)
NAND2 = GateKind("NAND2", 2, kleene_nand)
NOR2 = GateKind("NOR2", 2, kleene_nor)
XOR2 = GateKind("XOR2", 2, kleene_xor)
XNOR2 = GateKind("XNOR2", 2, kleene_xnor)
AOI21 = GateKind("AOI21", 3, kleene_aoi21)
OAI21 = GateKind("OAI21", 3, kleene_oai21)
MUX2 = GateKind("MUX2", 3, kleene_mux)  # (sel, a, b) -> a if sel=0 else b

#: Constant drivers (zero-arity); not counted as logic gates by default.
CONST0 = GateKind("CONST0", 0, _const0)
CONST1 = GateKind("CONST1", 0, _const1)

ALL_GATE_KINDS: Dict[str, GateKind] = {
    kind.name: kind
    for kind in (
        INV,
        AND2,
        OR2,
        BUF,
        NAND2,
        NOR2,
        XOR2,
        XNOR2,
        AOI21,
        OAI21,
        MUX2,
        CONST0,
        CONST1,
    )
}

#: Gate kinds that represent real logic (count toward gate totals).
LOGIC_GATE_KINDS: Tuple[str, ...] = tuple(
    name for name in ALL_GATE_KINDS if name not in ("CONST0", "CONST1")
)

#: The MC-safe subset, for containment lint checks.
MC_SAFE_KINDS: Tuple[str, ...] = tuple(
    kind.name for kind in ALL_GATE_KINDS.values() if kind.mc_safe
)
