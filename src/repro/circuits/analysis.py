"""Static analysis of netlists: gate counts, logic depth, area, delay.

Reproduces the three measures the paper reports for every design
(Tables 7 and 8):

* **# Gates** -- logic gate instances (constants/ties excluded),
* **Area [µm²]** -- sum of effective cell areas (post-layout model, see
  :mod:`repro.circuits.library`),
* **Delay [ps]** -- static critical path under a linear delay model
  (intrinsic + fanout load per cell).

Logic *depth* (in gate levels) is also exposed; the paper's asymptotic
claims (depth ``O(log B)``, size ``O(B)``) are checked against it in the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from .library import DEFAULT_LIBRARY, CellLibrary
from .netlist import Circuit, NetId


@dataclass(frozen=True)
class CostReport:
    """Cost summary of one circuit, mirroring a row of Table 7/8."""

    name: str
    gate_count: int
    depth: int
    area_um2: float
    delay_ps: float
    histogram: Mapping[str, int] = field(default_factory=dict)

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.gate_count} gates, depth {self.depth}, "
            f"{self.area_um2:.3f} µm², {self.delay_ps:.0f} ps"
        )


def logic_depth(circuit: Circuit) -> int:
    """Longest input-to-output path counted in gate levels.

    Inverters count as a level (the paper's depth-3 selection circuit
    counts its internal inverter levels the same way).
    """
    level: Dict[NetId, int] = {n: 0 for n in circuit.inputs}
    level.update({n: 0 for n in circuit.const_nets})
    deepest = 0
    for gate in circuit.topological_gates():
        d = 1 + max((level[n] for n in gate.inputs), default=0)
        level[gate.output] = d
        deepest = max(deepest, d)
    return deepest


def critical_path_delay(
    circuit: Circuit, library: CellLibrary = DEFAULT_LIBRARY
) -> float:
    """Static timing: longest arrival time over all outputs, in ps."""
    fanout = circuit.fanout()
    arrival: Dict[NetId, float] = {n: 0.0 for n in circuit.inputs}
    arrival.update({n: 0.0 for n in circuit.const_nets})
    worst = 0.0
    for gate in circuit.topological_gates():
        cell = library[gate.kind.name]
        gate_delay = cell.delay_with_fanout(fanout.get(gate.output, 1))
        t = gate_delay + max((arrival[n] for n in gate.inputs), default=0.0)
        arrival[gate.output] = t
        worst = max(worst, t)
    return worst


def total_area(circuit: Circuit, library: CellLibrary = DEFAULT_LIBRARY) -> float:
    """Sum of effective cell areas in µm²."""
    return sum(
        library.area(gate.kind.name)
        for gate in circuit.gates
        if gate.kind.arity > 0
    )


def critical_path(
    circuit: Circuit, library: CellLibrary = DEFAULT_LIBRARY
) -> Tuple[float, Tuple[NetId, ...]]:
    """The worst path delay and the nets along it (for reports/debug)."""
    fanout = circuit.fanout()
    arrival: Dict[NetId, float] = {n: 0.0 for n in circuit.inputs}
    arrival.update({n: 0.0 for n in circuit.const_nets})
    pred: Dict[NetId, Optional[NetId]] = {}
    for gate in circuit.topological_gates():
        cell = library[gate.kind.name]
        gate_delay = cell.delay_with_fanout(fanout.get(gate.output, 1))
        if gate.inputs:
            worst_in = max(gate.inputs, key=lambda n: arrival[n])
            arrival[gate.output] = gate_delay + arrival[worst_in]
            pred[gate.output] = worst_in
        else:
            arrival[gate.output] = gate_delay
            pred[gate.output] = None
    if not arrival:
        return (0.0, ())
    end = max(arrival, key=lambda n: arrival[n])
    path = [end]
    while pred.get(path[-1]) is not None:
        path.append(pred[path[-1]])
    return (arrival[end], tuple(reversed(path)))


def report(
    circuit: Circuit,
    library: CellLibrary = DEFAULT_LIBRARY,
    name: Optional[str] = None,
) -> CostReport:
    """Full cost report for a circuit (one Table 7/8 cell group)."""
    return CostReport(
        name=name or circuit.name,
        gate_count=circuit.gate_count(),
        depth=logic_depth(circuit),
        area_um2=round(total_area(circuit, library), 3),
        delay_ps=round(critical_path_delay(circuit, library), 1),
        histogram=circuit.gate_histogram(),
    )
