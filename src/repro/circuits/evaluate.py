"""Three-valued simulation of combinational netlists.

Evaluation assigns every net a :class:`~repro.ternary.trit.Trit` by a
single topological sweep.  Because every gate kind's evaluation function
is the metastable closure of its Boolean function (the paper's
computational model, Table 3), the sweep computes the circuit's
*worst-case* behaviour under metastability: an ``M`` on a net means the
corresponding physical node may be at an arbitrary intermediate or
oscillating voltage.

This matches the paper's modelling assumption that a combinational
circuit built from closure-respecting cells computes, on each output,
a value covered by the closure of its Boolean function -- and it is
exact (not conservative) for the tree-and-DAG structures used here.

Since the bit-parallel engine landed (:mod:`repro.circuits.compiled`),
the scalar entry points here are *width-1 wrappers* over the compiled
two-plane program: :func:`evaluate`, :func:`evaluate_outputs`, and
:func:`evaluate_words` compile the netlist once (cached per circuit)
and run it on a single-lane batch.  The original one-trit-per-net
interpreter survives as :func:`evaluate_interpreted` -- it is the
executable *reference semantics* that the compiled engine is tested
against, and the baseline the benchmarks measure speedups from.

Also provided: :func:`evaluate_all_resolutions`, the brute-force
semantics (simulate every stable resolution of the inputs Boolean-ly and
superpose), used by the verifier to show that circuit outputs always
*cover* the closure spec, and to detect when a design is strictly weaker
(i.e., outputs M where the closure would be stable).  All ``2**k``
resolutions now run as one compiled batch.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from ..ternary.resolution import resolutions
from ..ternary.trit import Trit
from ..ternary.word import Word
from .compiled import _TRIT_PLANES, compile_circuit, trit_from_planes
from .netlist import Circuit, NetId


def _check_assignment(
    circuit: Circuit, input_values: Mapping[NetId, Trit]
) -> None:
    """``input_values`` must cover exactly the primary inputs."""
    input_set = circuit.input_set
    missing = [n for n in circuit.inputs if n not in input_values]
    if missing:
        raise ValueError(f"missing values for inputs: {missing[:5]}")
    extra = [n for n in input_values if n not in input_set]
    if extra:
        raise ValueError(f"values given for non-input nets: {extra[:5]}")


def evaluate(circuit: Circuit, input_values: Mapping[NetId, Trit]) -> Dict[NetId, Trit]:
    """Simulate; returns the value of *every* net.

    ``input_values`` must cover exactly the primary inputs.  This is a
    width-1 wrapper over the compiled two-plane engine; results are
    bit-for-bit identical to :func:`evaluate_interpreted`.
    """
    _check_assignment(circuit, input_values)
    program = compile_circuit(circuit)
    planes = [
        _TRIT_PLANES[Trit.coerce(input_values[n])] for n in circuit.inputs
    ]
    p0, p1 = program.run_planes(planes, 1)
    be = program.backend  # planes are backend-native; read lane 0 via it
    return {
        net: trit_from_planes(be.get_lane(p0[slot], 0), be.get_lane(p1[slot], 0))
        for net, slot in program.net_slot.items()
    }


def evaluate_interpreted(
    circuit: Circuit, input_values: Mapping[NetId, Trit]
) -> Dict[NetId, Trit]:
    """Reference scalar interpreter: one trit per net, one gate at a time.

    Functionally identical to :func:`evaluate` but evaluates each gate's
    Kleene table directly instead of running the compiled bitwise
    program.  Kept as the independent ground truth for equivalence tests
    and as the "scalar" baseline in ``benchmarks/bench_engines.py``.
    """
    _check_assignment(circuit, input_values)
    values: Dict[NetId, Trit] = dict(input_values)
    for net, const in circuit.const_nets.items():
        values[net] = const
    for gate in circuit.topological_gates():
        values[gate.output] = gate.kind.evaluate(
            *(values[n] for n in gate.inputs)
        )
    return values


def evaluate_outputs(
    circuit: Circuit, input_values: Mapping[NetId, Trit]
) -> Tuple[Trit, ...]:
    """Simulate and project onto the primary outputs, in order."""
    _check_assignment(circuit, input_values)
    program = compile_circuit(circuit)
    batch = program.evaluate_batch([[input_values[n] for n in circuit.inputs]])
    return tuple(batch[0])


def evaluate_words(circuit: Circuit, *words: Word) -> Word:
    """Convenience wrapper: feed concatenated words, get outputs as a Word.

    The concatenation of ``words`` must match the circuit's input count;
    the full output vector is returned as a single :class:`Word` (callers
    slice it into fields).
    """
    flat: List[Trit] = [t for w in words for t in w]
    if len(flat) != len(circuit.inputs):
        raise ValueError(
            f"{circuit.name}: expected {len(circuit.inputs)} input bits, "
            f"got {len(flat)}"
        )
    return compile_circuit(circuit).evaluate_batch([flat])[0]


def evaluate_all_resolutions(circuit: Circuit, *words: Word) -> Word:
    """Superposition of Boolean simulations over all input resolutions.

    This is the metastable closure of the circuit's *Boolean* function
    applied to the given inputs -- the best any implementation of that
    Boolean function could do.  Comparing against :func:`evaluate_words`
    quantifies how far a concrete gate-level structure is from the
    closure ideal (Kleene simulation can only be equal or weaker, i.e.,
    produce M where the closure has a stable bit; the paper's designs are
    proven to achieve equality on valid inputs).

    All ``2**k`` resolutions (``k`` = number of M bits) are evaluated as
    one compiled batch, and the superposition is read straight off the
    output planes: an output bit can be 0 (resp. 1) iff *some* lane
    resolved it to 0 (resp. 1).
    """
    flat: List[Trit] = [t for w in words for t in w]
    if len(flat) != len(circuit.inputs):
        raise ValueError(
            f"{circuit.name}: expected {len(circuit.inputs)} input bits, "
            f"got {len(flat)}"
        )
    combined = Word(flat)
    program = compile_circuit(circuit)
    planes, n = program.encode_inputs(resolutions(combined))
    p0, p1 = program.run_planes(planes, n)
    be = program.backend  # any-lane reduction in backend plane space
    return Word(
        trit_from_planes(be.any(p0[s]), be.any(p1[s]))
        for s in program.output_slots
    )


def weaker_than_closure(circuit: Circuit, *words: Word) -> List[int]:
    """0-based output positions where simulation is strictly weaker (M vs
    stable) than the closure of the circuit's Boolean function."""
    sim = evaluate_words(circuit, *words)
    ideal = evaluate_all_resolutions(circuit, *words)
    return [
        i
        for i, (s, d) in enumerate(zip(sim, ideal))
        if s.is_metastable and d.is_stable
    ]
