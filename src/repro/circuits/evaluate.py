"""Three-valued simulation of combinational netlists.

Evaluation assigns every net a :class:`~repro.ternary.trit.Trit` by a
single topological sweep.  Because every gate kind's evaluation function
is the metastable closure of its Boolean function (the paper's
computational model, Table 3), the sweep computes the circuit's
*worst-case* behaviour under metastability: an ``M`` on a net means the
corresponding physical node may be at an arbitrary intermediate or
oscillating voltage.

This matches the paper's modelling assumption that a combinational
circuit built from closure-respecting cells computes, on each output,
a value covered by the closure of its Boolean function -- and it is
exact (not conservative) for the tree-and-DAG structures used here.

Also provided: :func:`evaluate_all_resolutions`, the brute-force
semantics (simulate every stable resolution of the inputs Boolean-ly and
superpose), used by the verifier to show that circuit outputs always
*cover* the closure spec, and to detect when a design is strictly weaker
(i.e., outputs M where the closure would be stable).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..ternary.resolution import resolutions, superpose
from ..ternary.trit import Trit
from ..ternary.word import Word
from .netlist import Circuit, NetId


def evaluate(circuit: Circuit, input_values: Mapping[NetId, Trit]) -> Dict[NetId, Trit]:
    """Simulate; returns the value of *every* net.

    ``input_values`` must cover exactly the primary inputs.
    """
    missing = [n for n in circuit.inputs if n not in input_values]
    if missing:
        raise ValueError(f"missing values for inputs: {missing[:5]}")
    extra = [n for n in input_values if n not in set(circuit.inputs)]
    if extra:
        raise ValueError(f"values given for non-input nets: {extra[:5]}")

    values: Dict[NetId, Trit] = dict(input_values)
    for net, const in circuit.const_nets.items():
        values[net] = const
    for gate in circuit.topological_gates():
        values[gate.output] = gate.kind.evaluate(
            *(values[n] for n in gate.inputs)
        )
    return values


def evaluate_outputs(
    circuit: Circuit, input_values: Mapping[NetId, Trit]
) -> Tuple[Trit, ...]:
    """Simulate and project onto the primary outputs, in order."""
    values = evaluate(circuit, input_values)
    return tuple(values[n] for n in circuit.outputs)


def evaluate_words(circuit: Circuit, *words: Word) -> Word:
    """Convenience wrapper: feed concatenated words, get outputs as a Word.

    The concatenation of ``words`` must match the circuit's input count;
    the full output vector is returned as a single :class:`Word` (callers
    slice it into fields).
    """
    flat: List[Trit] = [t for w in words for t in w]
    if len(flat) != len(circuit.inputs):
        raise ValueError(
            f"{circuit.name}: expected {len(circuit.inputs)} input bits, "
            f"got {len(flat)}"
        )
    assignment = dict(zip(circuit.inputs, flat))
    return Word(evaluate_outputs(circuit, assignment))


def evaluate_all_resolutions(circuit: Circuit, *words: Word) -> Word:
    """Superposition of Boolean simulations over all input resolutions.

    This is the metastable closure of the circuit's *Boolean* function
    applied to the given inputs -- the best any implementation of that
    Boolean function could do.  Comparing against :func:`evaluate_words`
    quantifies how far a concrete gate-level structure is from the
    closure ideal (Kleene simulation can only be equal or weaker, i.e.,
    produce M where the closure has a stable bit; the paper's designs are
    proven to achieve equality on valid inputs).
    """
    flat: List[Trit] = [t for w in words for t in w]
    if len(flat) != len(circuit.inputs):
        raise ValueError(
            f"{circuit.name}: expected {len(circuit.inputs)} input bits, "
            f"got {len(flat)}"
        )
    combined = Word(flat)
    outputs = []
    for stable in resolutions(combined):
        assignment = dict(zip(circuit.inputs, stable))
        outputs.append(Word(evaluate_outputs(circuit, assignment)))
    return superpose(outputs)


def weaker_than_closure(circuit: Circuit, *words: Word) -> List[int]:
    """0-based output positions where simulation is strictly weaker (M vs
    stable) than the closure of the circuit's Boolean function."""
    sim = evaluate_words(circuit, *words)
    ideal = evaluate_all_resolutions(circuit, *words)
    return [
        i
        for i, (s, d) in enumerate(zip(sim, ideal))
        if s.is_metastable and d.is_stable
    ]
